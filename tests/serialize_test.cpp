// Round-trip tests for profile serialization: the reconstructed profile
// must predict identically to the original on random inputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lang/builder.hpp"
#include "sym/serialize.hpp"
#include "sym/symexec.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

namespace prog::sym {
namespace {

lang::TxInput random_input(const lang::Proc& proc, Rng& rng) {
  lang::TxInput in;
  for (const lang::Param& p : proc.params) {
    if (p.is_array) {
      std::vector<Value> vals;
      for (std::uint32_t i = 0; i < p.max_len; ++i) {
        vals.push_back(rng.uniform(p.lo, p.hi));
      }
      in.add_array(std::move(vals));
    } else {
      in.add(rng.uniform(p.lo, p.hi));
    }
  }
  return in;
}

void expect_roundtrip(const lang::Proc& proc,
                      const store::VersionedStore& store, int iters = 40) {
  auto original = Profiler::profile(proc);
  const std::string text = serialize(*original);
  auto restored = deserialize(text, proc);

  EXPECT_EQ(restored->klass(), original->klass());
  EXPECT_EQ(restored->complete(), original->complete());
  EXPECT_EQ(restored->pivot_site_count(), original->pivot_site_count());
  EXPECT_EQ(restored->tables_touched(), original->tables_touched());
  EXPECT_EQ(restored->tables_written(), original->tables_written());

  store::SnapshotView view(store, store::VersionedStore::kLatest);
  Rng rng(4242);
  for (int i = 0; i < iters; ++i) {
    const lang::TxInput in = random_input(proc, rng);
    const Prediction a = original->predict(in, view);
    const Prediction b = restored->predict(in, view);
    ASSERT_EQ(a.keys, b.keys) << proc.name;
    ASSERT_EQ(a.write_keys, b.write_keys) << proc.name;
    ASSERT_EQ(a.pivots.size(), b.pivots.size()) << proc.name;
    for (std::size_t k = 0; k < a.pivots.size(); ++k) {
      EXPECT_EQ(a.pivots[k].key, b.pivots[k].key);
      EXPECT_EQ(a.pivots[k].version_hash, b.pivots[k].version_hash);
    }
  }
  // Serialization reaches a fixed point after one round trip (the first
  // rebuild may canonicalize expression operand order).
  const std::string text2 = serialize(*restored);
  auto restored2 = deserialize(text2, proc);
  EXPECT_EQ(text2, serialize(*restored2));
}

TEST(SerializeTest, SimpleIndependentProc) {
  lang::ProcBuilder b("pair_write");
  auto x = b.param("x", 0, 50);
  auto y = b.param("y", 0, 50);
  b.put(1, x * 2, {{0, y}});
  b.put(2, x + y, {{0, x}});
  const lang::Proc proc = std::move(b).build();
  store::VersionedStore s;
  expect_roundtrip(proc, s);
}

TEST(SerializeTest, BranchyProc) {
  lang::ProcBuilder b("branchy");
  auto x = b.param("x", 0, 100);
  b.if_(
      x > 50, [&](lang::ProcBuilder& t) { t.put(1, x, {{0, x}}); },
      [&](lang::ProcBuilder& e) { e.put(2, x + 5, {{0, x}}); });
  const lang::Proc proc = std::move(b).build();
  store::VersionedStore s;
  expect_roundtrip(proc, s);
}

TEST(SerializeTest, DependentProcWithPivots) {
  lang::ProcBuilder b("chase");
  auto x = b.param("x", 0, 20);
  auto h = b.get(1, x);
  b.if_(h.exists(), [&](lang::ProcBuilder& t) {
    t.put(2, h.field(3), {{0, t.lit(1)}});
  });
  const lang::Proc proc = std::move(b).build();
  store::VersionedStore s;
  Rng rng(5);
  for (Key k = 0; k <= 20; ++k) {
    if (rng.percent(60)) {
      s.put({1, k}, store::Row{{3, rng.uniform(0, 100)}}, 0);
    }
  }
  expect_roundtrip(proc, s);
}

TEST(SerializeTest, TpccProcedures) {
  const auto sc = workloads::tpcc::Scale::tiny(2);
  store::VersionedStore s;
  workloads::tpcc::load(s, sc);
  expect_roundtrip(workloads::tpcc::build_new_order(sc), s, 20);
  expect_roundtrip(workloads::tpcc::build_payment(sc), s, 20);
  expect_roundtrip(workloads::tpcc::build_delivery(sc), s, 10);
}

TEST(SerializeTest, RubisProcedures) {
  const auto sc = workloads::rubis::Scale::small();
  store::VersionedStore s;
  workloads::rubis::load(s, sc);
  expect_roundtrip(workloads::rubis::build_store_bid(sc), s, 20);
  expect_roundtrip(workloads::rubis::build_store_comment(sc), s, 20);
  expect_roundtrip(workloads::rubis::build_register_item(sc), s, 20);
}

TEST(SerializeTest, WrongProcedureRejected) {
  lang::ProcBuilder b("alpha");
  auto x = b.param("x", 0, 10);
  b.put(1, x, {{0, x}});
  const lang::Proc alpha = std::move(b).build();

  lang::ProcBuilder b2("beta");
  auto y = b2.param("y", 0, 10);
  b2.put(1, y, {{0, y}});
  const lang::Proc beta = std::move(b2).build();

  const std::string text = serialize(*Profiler::profile(alpha));
  EXPECT_THROW((void)deserialize(text, beta), UsageError);
}

TEST(SerializeTest, MalformedInputRejected) {
  lang::ProcBuilder b("alpha");
  auto x = b.param("x", 0, 10);
  b.put(1, x, {{0, x}});
  const lang::Proc alpha = std::move(b).build();
  EXPECT_THROW((void)deserialize("garbage nonsense", alpha), UsageError);
  EXPECT_THROW((void)deserialize("profile 9 alpha\n", alpha), UsageError);
  EXPECT_THROW((void)deserialize("profile 1 alpha\nexpr 5 const 1\n", alpha),
               UsageError);
}

}  // namespace
}  // namespace prog::sym
