// Golden tests for txlint pass 2 (analysis/lint.*): two intentionally buggy
// procedures, built as raw ASTs (lang::ProcBuilder refuses to construct some
// of these bugs, e.g. max_iters == 0), with exact expected renderings. Plus
// targeted checks for the remaining diagnostics and clean-proc output.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "lang/ast.hpp"
#include "workloads/microbench.hpp"

namespace prog {
namespace {

namespace micro = workloads::micro;
using analysis::Diagnostic;
using analysis::Severity;
using lang::EKind;
using lang::ExprId;
using lang::Proc;
using lang::SExpr;
using lang::SKind;
using lang::Stmt;

ExprId push(Proc& p, SExpr e) {
  p.exprs.push_back(e);
  return static_cast<ExprId>(p.exprs.size() - 1);
}

/// GET t7[n] -> h; for i in [0, h.f0) with NO static bound { PUT t7[n]
/// {f0: acc} }; emit acc — an unbounded store-dependent loop plus a scalar
/// read before any assignment (twice, at distinct locations).
Proc buggy_loop() {
  Proc p;
  p.name = "buggy_loop";
  p.params.push_back({"n", 0, 9, false, 0});
  p.var_types = {lang::VarType::kHandle, lang::VarType::kScalar,
                 lang::VarType::kScalar};
  p.var_names = {"h", "i", "acc"};
  const ExprId n = push(p, {.kind = EKind::kParam, .param = 0});
  const ExprId zero = push(p, {.kind = EKind::kConst, .cval = 0});
  const ExprId hf = push(p, {.kind = EKind::kField, .var = 0, .field = 0});
  const ExprId acc = push(p, {.kind = EKind::kVar, .var = 2});

  Stmt get;
  get.kind = SKind::kGet;
  get.var = 0;
  get.table = 7;
  get.a = n;
  p.body.push_back(std::move(get));

  Stmt put;
  put.kind = SKind::kPut;
  put.table = 7;
  put.a = n;
  put.fields = {{0, acc}};
  Stmt loop;
  loop.kind = SKind::kFor;
  loop.var = 1;
  loop.a = zero;
  loop.b = hf;
  loop.max_iters = 0;  // the bug: no declared unroll bound
  loop.body.push_back(std::move(put));
  p.body.push_back(std::move(loop));

  Stmt emit;
  emit.kind = SKind::kEmit;
  emit.a = acc;
  p.body.push_back(std::move(emit));
  return p;
}

/// if c { GET t5[k] -> h1 } else { GET t5[k] -> h2 }; PUT t6[h1.f0 + h2.f0];
/// PUT t9[k] {f0: 1}; PUT t9[k] {f0: 2} — uses of handles only assigned on
/// one arm, a key mixing mutually exclusive pivots, and a dead write.
Proc buggy_branch() {
  Proc p;
  p.name = "buggy_branch";
  p.params.push_back({"c", 0, 1, false, 0});
  p.params.push_back({"k", 0, 9, false, 0});
  p.var_types = {lang::VarType::kHandle, lang::VarType::kHandle};
  p.var_names = {"h1", "h2"};
  const ExprId c = push(p, {.kind = EKind::kParam, .param = 0});
  const ExprId k = push(p, {.kind = EKind::kParam, .param = 1});
  const ExprId h1f = push(p, {.kind = EKind::kField, .var = 0, .field = 0});
  const ExprId h2f = push(p, {.kind = EKind::kField, .var = 1, .field = 0});
  const ExprId sum = push(p, {.kind = EKind::kAdd, .a = h1f, .b = h2f});
  const ExprId one = push(p, {.kind = EKind::kConst, .cval = 1});
  const ExprId two = push(p, {.kind = EKind::kConst, .cval = 2});

  Stmt get1;
  get1.kind = SKind::kGet;
  get1.var = 0;
  get1.table = 5;
  get1.a = k;
  Stmt get2;
  get2.kind = SKind::kGet;
  get2.var = 1;
  get2.table = 5;
  get2.a = k;
  Stmt branch;
  branch.kind = SKind::kIf;
  branch.a = c;
  branch.body.push_back(std::move(get1));
  branch.else_body.push_back(std::move(get2));
  p.body.push_back(std::move(branch));

  Stmt mix;
  mix.kind = SKind::kPut;
  mix.table = 6;
  mix.a = sum;
  mix.fields = {{0, one}};
  p.body.push_back(std::move(mix));

  Stmt dead;
  dead.kind = SKind::kPut;
  dead.table = 9;
  dead.a = k;
  dead.fields = {{0, one}};
  p.body.push_back(std::move(dead));

  Stmt win;
  win.kind = SKind::kPut;
  win.table = 9;
  win.a = k;
  win.fields = {{0, two}};
  p.body.push_back(std::move(win));
  return p;
}

TEST(LintGoldenTest, BuggyLoop) {
  const Proc p = buggy_loop();
  const std::vector<Diagnostic> diags = analysis::lint(p);
  EXPECT_TRUE(analysis::has_errors(diags));
  EXPECT_EQ(
      analysis::render(p, diags),
      "buggy_loop: 3 diagnostic(s)\n"
      "  [error] loop-unbounded at body[1]: loop has no positive declared "
      "static bound and its trip count depends on store reads\n"
      "    fix: declare max_iters > 0 so symbolic execution can bound the "
      "unrolling\n"
      "  [error] uninit-var at body[1].for[0]: variable 'acc' may be read "
      "before assignment\n"
      "    fix: initialize 'acc' on every path before this use\n"
      "  [error] uninit-var at body[2]: variable 'acc' may be read before "
      "assignment\n"
      "    fix: initialize 'acc' on every path before this use\n");
}

TEST(LintGoldenTest, BuggyBranch) {
  const Proc p = buggy_branch();
  const std::vector<Diagnostic> diags = analysis::lint(p);
  EXPECT_TRUE(analysis::has_errors(diags));
  EXPECT_EQ(
      analysis::render(p, diags),
      "buggy_branch: 4 diagnostic(s)\n"
      "  [error] uninit-var at body[1]: row handle 'h1' may be read before "
      "assignment\n"
      "    fix: perform the GET on every path that reaches this use\n"
      "  [error] uninit-var at body[1]: row handle 'h2' may be read before "
      "assignment\n"
      "    fix: perform the GET on every path that reaches this use\n"
      "  [error] mixed-branch-pivots at body[1]: key expression mixes pivot "
      "fields of 'h1' and 'h2', which are read in mutually exclusive "
      "branches\n"
      "    fix: at most one of these handles is fresh on any execution; "
      "restructure so the key uses handles from one branch arm\n"
      "  [warning] dead-write at body[2]: PUT is completely overwritten by "
      "the PUT at body[3] before any read of table 9\n"
      "    fix: drop the earlier PUT or merge the two writes\n");
}

TEST(LintTest, ForkWithoutAccessesWarns) {
  // if (x > 0) { v = 1 } else { v = 2 }; GET t3[v]; emit h.f0 — the branch
  // assigns an RWS-relevant variable but performs no accesses, so SE forks
  // where a min/max-style rewrite would keep one path.
  Proc p;
  p.name = "forky";
  p.params.push_back({"x", 0, 9, false, 0});
  p.var_types = {lang::VarType::kScalar, lang::VarType::kHandle};
  p.var_names = {"v", "h"};
  const ExprId x = push(p, {.kind = EKind::kParam, .param = 0});
  const ExprId zero = push(p, {.kind = EKind::kConst, .cval = 0});
  const ExprId cond = push(p, {.kind = EKind::kGt, .a = x, .b = zero});
  const ExprId one = push(p, {.kind = EKind::kConst, .cval = 1});
  const ExprId two = push(p, {.kind = EKind::kConst, .cval = 2});
  const ExprId v = push(p, {.kind = EKind::kVar, .var = 0});
  const ExprId hf = push(p, {.kind = EKind::kField, .var = 1, .field = 0});

  Stmt a1;
  a1.kind = SKind::kAssign;
  a1.var = 0;
  a1.a = one;
  Stmt a2;
  a2.kind = SKind::kAssign;
  a2.var = 0;
  a2.a = two;
  Stmt branch;
  branch.kind = SKind::kIf;
  branch.a = cond;
  branch.body.push_back(std::move(a1));
  branch.else_body.push_back(std::move(a2));
  p.body.push_back(std::move(branch));

  Stmt get;
  get.kind = SKind::kGet;
  get.var = 1;
  get.table = 3;
  get.a = v;
  p.body.push_back(std::move(get));

  Stmt emit;
  emit.kind = SKind::kEmit;
  emit.a = hf;
  p.body.push_back(std::move(emit));

  const std::vector<Diagnostic> diags = analysis::lint(p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "fork-no-access");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].location, "body[0]");
  EXPECT_FALSE(analysis::has_errors(diags));
}

TEST(LintTest, BoundedDataDependentLoopWarns) {
  // GET t3[k] -> h; for i in [0, h.f0) max_iters=4 { GET t3[i] -> h2 } —
  // bounded, so only the path-set blowup warning fires.
  Proc p;
  p.name = "datatrip";
  p.params.push_back({"k", 0, 9, false, 0});
  p.var_types = {lang::VarType::kHandle, lang::VarType::kScalar,
                 lang::VarType::kHandle};
  p.var_names = {"h", "i", "h2"};
  const ExprId k = push(p, {.kind = EKind::kParam, .param = 0});
  const ExprId zero = push(p, {.kind = EKind::kConst, .cval = 0});
  const ExprId hf = push(p, {.kind = EKind::kField, .var = 0, .field = 0});
  const ExprId iv = push(p, {.kind = EKind::kVar, .var = 1});

  Stmt get;
  get.kind = SKind::kGet;
  get.var = 0;
  get.table = 3;
  get.a = k;
  p.body.push_back(std::move(get));

  Stmt inner;
  inner.kind = SKind::kGet;
  inner.var = 2;
  inner.table = 3;
  inner.a = iv;
  Stmt loop;
  loop.kind = SKind::kFor;
  loop.var = 1;
  loop.a = zero;
  loop.b = hf;
  loop.max_iters = 4;
  loop.body.push_back(std::move(inner));
  p.body.push_back(std::move(loop));

  const std::vector<Diagnostic> diags = analysis::lint(p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "loop-data-trip");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].location, "body[1]");
  EXPECT_NE(diags[0].message.find("up to 4"), std::string::npos);
}

TEST(LintTest, WorkloadProceduresAreClean) {
  const micro::CatalogOptions co;
  const Proc order = micro::build_order(co);
  const std::vector<Diagnostic> diags = analysis::lint(order);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(analysis::render(order, diags), "micro_order: clean\n");
}

}  // namespace
}  // namespace prog
