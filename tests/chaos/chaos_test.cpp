// Chaos suite: seeded fault schedules against the replicated database
// (ISSUE: crash/restart, checkpoint/catch-up, divergence quarantine).
//
// Three layers:
//   - seeded sweeps: fixed seeds drive run_chaos over TPC-C and the catalog
//     microbenchmark; every run must end converged with byte-identical
//     replica state (the determinism claim under fire);
//   - directed recovery scenarios: a follower restarting from a local
//     checkpoint whose suffix the leader has compacted away (InstallSnapshot
//     path), and an injected divergence that must be quarantined and
//     re-synced from a hash-validated checkpoint;
//   - a longer randomized sweep gated behind PROG_CHAOS_LONG=1 (CI runs it
//     on a schedule; locally it is skipped).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "consensus/chaos.hpp"
#include "lang/builder.hpp"
#include "obs/tracing/tracing.hpp"
#include "obs/tracing/validator.hpp"
#include "workloads/microbench.hpp"
#include "workloads/tpcc.hpp"

namespace prog::consensus {
namespace {

// --- tiny counter workload for the directed scenarios ------------------------

constexpr TableId kT = 1;
constexpr FieldId kV = 0;
constexpr Value kKeys = 32;

lang::Proc make_bump() {
  lang::ProcBuilder b("bump");
  auto k = b.param("k", 0, kKeys - 1);
  auto amt = b.param("amt", 1, 9);
  auto row = b.get(kT, k);
  b.put(kT, k, {{kV, row.field(kV) + amt}});
  return std::move(b).build();
}

ReplicatedDb::SetupFn bump_setup() {
  return [](db::Database& d) {
    d.register_procedure(make_bump());
    for (Key k = 0; k < static_cast<Key>(kKeys); ++k) {
      d.store().put({kT, k}, store::Row{{kV, 100}}, 0);
    }
    d.finalize();
  };
}

std::vector<sched::TxRequest> bump_batch(std::size_t n, Rng& rng) {
  std::vector<sched::TxRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sched::TxRequest r;
    r.proc = 0;
    r.input.add(rng.uniform(0, kKeys - 1));
    r.input.add(rng.uniform(1, 9));
    out.push_back(std::move(r));
  }
  return out;
}

sched::EngineConfig small_cfg() {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  return cfg;
}

// --- seeded sweeps ------------------------------------------------------------

class ChaosSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeedTest, TpccMixConverges) {
  const std::uint64_t seed = GetParam();
  db::Database gen_db(small_cfg());
  workloads::tpcc::Workload gen(gen_db, workloads::tpcc::Scale::tiny(1));

  RecoveryOptions rec;
  rec.checkpoint_interval = 3;
  ReplicatedDb rdb(
      3, seed,
      [](db::Database& d) {
        workloads::tpcc::Workload wl(d, workloads::tpcc::Scale::tiny(1));
      },
      small_cfg(), {}, rec);

  ChaosOptions copts;
  copts.rounds = 30;
  copts.batch_size = 8;
  const ChaosReport rep = run_chaos(
      rdb, [&](std::size_t n, Rng& rng) { return gen.batch(n, rng); }, copts,
      seed * 31 + 7);

  EXPECT_TRUE(rep.converged) << "seed " << seed;
  EXPECT_TRUE(rep.hashes_match) << "seed " << seed;
  // Telemetry divergence oracle: the deterministic counter snapshot is
  // byte-identical on every replica at quiescence — a restore must count a
  // replayed batch exactly once (checkpoint-carried stats baseline).
  EXPECT_TRUE(rep.counters_match) << "seed " << seed;
  EXPECT_FALSE(rep.counter_snapshot.empty()) << "seed " << seed;
  EXPECT_GT(rep.batches_applied, 0u) << "seed " << seed;
  EXPECT_LE(rep.batches_applied, rep.batches_submitted);

  // The harness mirrors every injected fault into the chaos_* counter
  // families, so dashboards/tests can assert on telemetry alone.
  const obs::ReplicaMetrics& rm = rdb.replica_metrics();
  EXPECT_EQ(rm.chaos_crashes->value(), rep.events.crashes);
  EXPECT_EQ(rm.chaos_pauses->value(), rep.events.pauses);
  EXPECT_EQ(rm.chaos_restarts->value(), rep.events.restarts);
  EXPECT_EQ(rm.chaos_partitions->value(), rep.events.partitions);
  EXPECT_EQ(rm.chaos_heals->value(), rep.events.heals);
  EXPECT_EQ(rm.chaos_bursts->value(), rep.events.bursts);
  EXPECT_EQ(rm.checkpoints->value(), rep.recovery.checkpoints_taken);
  EXPECT_EQ(rm.batches_submitted->value(), rep.batches_submitted);
  rdb.refresh_gauges();
  EXPECT_EQ(rm.replicas_down->value(), 0);  // everything healed at the end
}

TEST_P(ChaosSeedTest, CatalogMixConverges) {
  const std::uint64_t seed = GetParam();
  workloads::micro::CatalogOptions wopts;
  wopts.catalog_keys = 200;
  wopts.accounts = 400;
  wopts.reads_per_tx = 4;

  db::Database gen_db(small_cfg());
  workloads::micro::CatalogWorkload gen(gen_db, wopts);

  RecoveryOptions rec;
  rec.checkpoint_interval = 4;
  ReplicatedDb rdb(
      3, seed,
      [wopts](db::Database& d) {
        workloads::micro::CatalogWorkload wl(d, wopts);
      },
      small_cfg(), {}, rec);

  ChaosOptions copts;
  copts.rounds = 25;
  copts.batch_size = 10;
  const ChaosReport rep = run_chaos(
      rdb,
      [&](std::size_t n, Rng& rng) { return gen.batch(n, /*reprices=*/2, rng); },
      copts, seed ^ 0x9e3779b97f4a7c15ULL);

  EXPECT_TRUE(rep.converged) << "seed " << seed;
  EXPECT_TRUE(rep.hashes_match) << "seed " << seed;
  EXPECT_TRUE(rep.counters_match) << "seed " << seed;
  EXPECT_GT(rep.batches_applied, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, ChaosSeedTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(ChaosTest, SameSeedReproducesIdenticalRun) {
  auto once = [](std::uint64_t seed) {
    db::Database gen_db(small_cfg());
    workloads::tpcc::Workload gen(gen_db, workloads::tpcc::Scale::tiny(1));
    RecoveryOptions rec;
    rec.checkpoint_interval = 3;
    ReplicatedDb rdb(
        3, seed,
        [](db::Database& d) {
          workloads::tpcc::Workload wl(d, workloads::tpcc::Scale::tiny(1));
        },
        small_cfg(), {}, rec);
    ChaosOptions copts;
    copts.rounds = 20;
    copts.batch_size = 6;
    return run_chaos(
        rdb, [&](std::size_t n, Rng& rng) { return gen.batch(n, rng); }, copts,
        seed + 1);
  };
  const ChaosReport a = once(42);
  const ChaosReport b = once(42);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.state_hash, b.state_hash);
  EXPECT_EQ(a.batches_applied, b.batches_applied);
  EXPECT_EQ(a.trace, b.trace);  // the fault schedule itself replays exactly
  // The counter snapshot is part of the reproducible surface too.
  EXPECT_EQ(a.counter_snapshot, b.counter_snapshot);
}

// --- directed recovery scenarios ---------------------------------------------

/// A follower crashes with a local checkpoint, the leader compacts its log
/// past that boundary, and the restarted follower must come back via
/// checkpoint restore + InstallSnapshot state transfer (the committed suffix
/// between its checkpoint and the leader's boundary is gone from every log).
TEST(ChaosTest, CheckpointRestoreThenCompactedSuffixCatchUp) {
  RecoveryOptions rec;
  rec.checkpoint_interval = 2;
  rec.compact_logs = true;
  ReplicatedDb rdb(3, 9001, bump_setup(), small_cfg(), {}, rec);
  rdb.run_ms(1000);
  const int leader = rdb.raft().leader();
  ASSERT_GE(leader, 0);
  const NodeId victim = leader == 0 ? 1 : 0;

  Rng rng(77);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(6, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(500);
  ASSERT_FALSE(rdb.checkpoints(victim).empty());

  rdb.crash_replica(victim);
  ASSERT_TRUE(rdb.replica_down(victim));
  for (int i = 0; i < 8; ++i) {  // leader checkpoints + compacts past victim
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(6, rng)));
    rdb.run_ms(100);
  }
  const NodeId lid = static_cast<NodeId>(rdb.raft().leader());
  EXPECT_GT(rdb.raft().node(lid).snapshot_index(), 6u);

  rdb.restart_replica(victim);
  rdb.run_ms(3000);

  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
  const RecoveryStats& st = rdb.recovery_stats();
  EXPECT_GT(st.checkpoints_taken, 0u);
  EXPECT_GE(st.checkpoint_restores, 1u);  // victim restored its local image
  EXPECT_GE(st.snapshot_installs, 1u);    // and caught up via InstallSnapshot
  // Engine counters survived the rebuild (resume-safe accounting) — and the
  // replayed suffix was counted exactly once: the restored replica's
  // deterministic snapshot is byte-identical to the never-crashed leader's.
  EXPECT_GT(rdb.replica_engine_stats(victim).committed, 0u);
  EXPECT_EQ(rdb.deterministic_counter_snapshot(victim),
            rdb.deterministic_counter_snapshot(lid));

  // The replica-metrics registry mirrors RecoveryStats (scrape parity).
  const obs::ReplicaMetrics& rm = rdb.replica_metrics();
  EXPECT_EQ(rm.checkpoints->value(), st.checkpoints_taken);
  EXPECT_EQ(rm.checkpoint_restores->value(), st.checkpoint_restores);
  EXPECT_EQ(rm.snapshot_installs->value(), st.snapshot_installs);
  rdb.refresh_gauges();
  EXPECT_EQ(rm.replicas_down->value(), 0);
  EXPECT_EQ(rm.batch_lag->value(), 0);
}

/// Restart with checkpointing disabled: the replica must rebuild by full
/// replay of the committed prefix (no checkpoint image to restore).
TEST(ChaosTest, RestartWithoutCheckpointsFullyReplays) {
  RecoveryOptions rec;
  rec.checkpoint_interval = 0;  // no checkpoints
  rec.compact_logs = false;
  ReplicatedDb rdb(3, 4242, bump_setup(), small_cfg(), {}, rec);
  rdb.run_ms(1000);
  const int leader = rdb.raft().leader();
  ASSERT_GE(leader, 0);
  const NodeId victim = leader == 0 ? 1 : 0;

  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(5, rng)));
    rdb.run_ms(100);
  }
  rdb.crash_replica(victim);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(5, rng)));
    rdb.run_ms(100);
  }
  rdb.restart_replica(victim);
  rdb.run_ms(3000);

  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
  EXPECT_GE(rdb.recovery_stats().full_rebuilds, 1u);
  EXPECT_EQ(rdb.recovery_stats().checkpoints_taken, 0u);
}

/// Injected divergence: corrupt one follower's visible state behind the
/// engine's back. The next applied batch produces a state hash that
/// disagrees with the recorded history; the replica must be quarantined and
/// re-synced from a checkpoint the history vouches for.
TEST(ChaosTest, DivergenceIsQuarantinedAndResynced) {
  RecoveryOptions rec;
  rec.checkpoint_interval = 2;
  rec.compact_logs = false;  // keep logs: resync replays from the pool
  ReplicatedDb rdb(3, 31337, bump_setup(), small_cfg(), {}, rec);
  rdb.run_ms(1000);
  const int leader = rdb.raft().leader();
  ASSERT_GE(leader, 0);
  const NodeId victim = leader == 0 ? 1 : 0;

  Rng rng(11);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(5, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(500);
  ASSERT_TRUE(rdb.converged());

  // Corrupt a single row on the follower (a stray write the deterministic
  // engine never issued — e.g. a cosmic-ray stand-in).
  db::Database& bad = rdb.replica(victim);
  bad.store().put({kT, 0}, store::Row{{kV, 999999}}, bad.applied_batches());
  ASSERT_NE(bad.state_hash(), rdb.replica(static_cast<NodeId>(leader)).state_hash());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(5, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(1000);

  const RecoveryStats& st = rdb.recovery_stats();
  EXPECT_GE(st.divergences_detected, 1u);
  EXPECT_GE(st.quarantines, 1u);
  EXPECT_GE(st.resyncs, 1u);
  EXPECT_FALSE(rdb.quarantined(victim));
  // Divergence handling is mirrored into the telemetry registry.
  const obs::ReplicaMetrics& rm = rdb.replica_metrics();
  EXPECT_EQ(rm.divergences->value(), st.divergences_detected);
  EXPECT_EQ(rm.quarantines->value(), st.quarantines);
  EXPECT_EQ(rm.resyncs->value(), st.resyncs);
  // A resynced replica rejoins the logical counter record: its snapshot is
  // byte-identical to the leader's again.
  EXPECT_EQ(rdb.deterministic_counter_snapshot(victim),
            rdb.deterministic_counter_snapshot(static_cast<NodeId>(leader)));

  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
}

/// Same injected divergence, with the flight recorder running: the
/// quarantine must fire an explanatory anomaly dump — bounded, both
/// renderings produced, and the recorded span stream replayable through the
/// validator (allow_partial: a ring dump is a window, not a full trace).
TEST(ChaosTest, DivergenceProducesFlightRecorderDump) {
  namespace tracing = obs::tracing;
  tracing::FlightRecorder::Options fopts;
  fopts.dump_max_events = 1024;
  tracing::FlightRecorder::instance().enable(fopts);
  std::vector<tracing::AnomalyDump> dumps;
  tracing::FlightRecorder::instance().set_dump_handler(
      [&dumps](const tracing::AnomalyDump& d) { dumps.push_back(d); });

  RecoveryOptions rec;
  rec.checkpoint_interval = 2;
  rec.compact_logs = false;
  sched::EngineConfig cfg = small_cfg();
  cfg.trace_sample_n = 1;  // record every batch: the dump has context
  ReplicatedDb rdb(3, 31337, bump_setup(), cfg, {}, rec);
  rdb.run_ms(1000);
  const int leader = rdb.raft().leader();
  ASSERT_GE(leader, 0);
  const NodeId victim = leader == 0 ? 1 : 0;

  Rng rng(11);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(5, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(500);
  ASSERT_TRUE(rdb.converged());

  db::Database& bad = rdb.replica(victim);
  bad.store().put({kT, 0}, store::Row{{kV, 999999}}, bad.applied_batches());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(5, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(1000);

  tracing::FlightRecorder::instance().set_dump_handler(nullptr);
  tracing::FlightRecorder::instance().disable();

  EXPECT_GE(rdb.recovery_stats().divergences_detected, 1u);
  ASSERT_GE(dumps.size(), 1u);
  const tracing::AnomalyDump& d = dumps.front();
  EXPECT_EQ(d.anomaly, tracing::Anomaly::kDivergence);
  // The one-line detail explains the quarantine: which replica, at which
  // batch, and that the hash disagreed.
  EXPECT_NE(d.detail.find("replica " + std::to_string(victim)),
            std::string::npos)
      << d.detail;
  EXPECT_NE(d.detail.find("quarantined"), std::string::npos) << d.detail;
  // Bounded: the dump respects dump_max_events and its text stays small.
  EXPECT_LE(d.events.size(), fopts.dump_max_events);
  EXPECT_LE(d.text.size(), 256u * 1024u);
  EXPECT_FALSE(d.events.empty());
  EXPECT_NE(d.text.find("divergence"), std::string::npos);
  EXPECT_NE(d.perfetto_json.find("\"traceEvents\""), std::string::npos);
  // The dumped window ends at the anomaly marker itself.
  EXPECT_EQ(d.events.back().kind, tracing::SpanKind::kAnomaly);
  // Replayable: the dumped events pass the validator in partial mode.
  tracing::ValidateOptions vopts;
  vopts.allow_partial = true;
  const auto report = tracing::validate_spans(d.events, vopts);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
}

// --- long sweep (opt-in) -------------------------------------------------------

TEST(ChaosLongTest, WiderSeedSweep) {
  const char* flag = std::getenv("PROG_CHAOS_LONG");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') {
    GTEST_SKIP() << "set PROG_CHAOS_LONG=1 to run the long chaos sweep";
  }
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    db::Database gen_db(small_cfg());
    workloads::tpcc::Workload gen(gen_db, workloads::tpcc::Scale::tiny(1));
    RecoveryOptions rec;
    rec.checkpoint_interval = 2 + seed % 3;
    rec.log_keep_tail = seed % 2;
    ReplicatedDb rdb(
        seed % 2 == 0 ? 5 : 3, seed,
        [](db::Database& d) {
          workloads::tpcc::Workload wl(d, workloads::tpcc::Scale::tiny(1));
        },
        small_cfg(), {}, rec);
    ChaosOptions copts;
    copts.rounds = 60;
    copts.batch_size = 8;
    const ChaosReport rep = run_chaos(
        rdb, [&](std::size_t n, Rng& rng) { return gen.batch(n, rng); }, copts,
        seed * 1000003);
    EXPECT_TRUE(rep.converged) << "seed " << seed;
    EXPECT_TRUE(rep.hashes_match) << "seed " << seed;
    EXPECT_GT(rep.batches_applied, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace prog::consensus
