// Crash-recovery fuzzing over the durable storage stack (ISSUE: durable WAL
// + checkpoint persistence on a fault-injecting VFS).
//
// Layers:
//   - seeded fuzz matrix: fixed seeds x every fault mode (torn tail, partial
//     write, bit flip, lying fsync), each killing a random replica at a
//     random syscall inside the write path, on the TPC-C and catalog
//     workloads — every run must recover byte-identical (state hash) to a
//     witness replay that never crashed;
//   - directed scenarios: a latent media error inside a WAL record (must be
//     quarantined, recovery completing via checkpoint + leader catch-up,
//     never a crash), and a whole-cluster cold start that reconstructs from
//     the on-disk state alone;
//   - satellites: the submit_with_retry overall deadline under a lost
//     majority, and the checkpoint-store recovery anchor surviving
//     retention;
//   - a wider sweep gated behind PROG_CHAOS_LONG=1 (nightly CI).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <tuple>

#include "consensus/recovery_fuzz.hpp"
#include "lang/builder.hpp"
#include "workloads/microbench.hpp"
#include "workloads/tpcc.hpp"

namespace prog::consensus {
namespace {

// --- tiny counter workload for the directed scenarios ------------------------

constexpr TableId kT = 1;
constexpr FieldId kV = 0;
constexpr Value kKeys = 32;

lang::Proc make_bump() {
  lang::ProcBuilder b("bump");
  auto k = b.param("k", 0, kKeys - 1);
  auto amt = b.param("amt", 1, 9);
  auto row = b.get(kT, k);
  b.put(kT, k, {{kV, row.field(kV) + amt}});
  return std::move(b).build();
}

ReplicatedDb::SetupFn bump_setup() {
  return [](db::Database& d) {
    d.register_procedure(make_bump());
    for (Key k = 0; k < static_cast<Key>(kKeys); ++k) {
      d.store().put({kT, k}, store::Row{{kV, 100}}, 0);
    }
    d.finalize();
  };
}

std::vector<sched::TxRequest> bump_batch(std::size_t n, Rng& rng) {
  std::vector<sched::TxRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sched::TxRequest r;
    r.proc = 0;
    r.input.add(rng.uniform(0, kKeys - 1));
    r.input.add(rng.uniform(1, 9));
    out.push_back(std::move(r));
  }
  return out;
}

sched::EngineConfig small_cfg() {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  return cfg;
}

std::string dump_trace(const RecoveryFuzzReport& rep) {
  std::ostringstream os;
  os << "victim=r" << rep.victim << " mode=" << dur::to_string(rep.mode)
     << " budget=" << rep.crash_syscall_budget
     << " crash_triggered=" << rep.crash_triggered << "\n";
  for (const std::string& line : rep.trace) os << "  " << line << "\n";
  return os.str();
}

void expect_recovered(const RecoveryFuzzReport& rep, std::uint64_t seed) {
  EXPECT_TRUE(rep.converged) << "seed " << seed << "\n" << dump_trace(rep);
  EXPECT_TRUE(rep.hashes_match) << "seed " << seed << "\n" << dump_trace(rep);
  EXPECT_TRUE(rep.witness_match) << "seed " << seed << "\n" << dump_trace(rep);
  EXPECT_TRUE(rep.counters_match) << "seed " << seed << "\n" << dump_trace(rep);
  EXPECT_GT(rep.batches_submitted, 0u);
  // The recovered replica came back through the durable path: local disk
  // and/or leader catch-up, but always accounted for.
  EXPECT_GE(rep.recovery.durable_recoveries + rep.recovery.full_rebuilds +
                rep.recovery.snapshot_installs,
            1u)
      << "seed " << seed << "\n"
      << dump_trace(rep);
}

// --- seeded fuzz matrix: seeds x fault modes x workloads ----------------------

class RecoveryFuzzMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, dur::FaultMode>> {
 protected:
  static RecoveryFuzzOptions fuzz_opts(dur::FaultMode mode) {
    RecoveryFuzzOptions opts;
    opts.warmup_rounds = 6;
    opts.armed_rounds = 7;
    opts.post_rounds = 3;
    opts.batch_size = 6;
    opts.mode = mode;
    opts.recovery.checkpoint_interval = 3;
    return opts;
  }
};

TEST_P(RecoveryFuzzMatrixTest, TpccRecoversToWitness) {
  const auto [seed, mode] = GetParam();
  db::Database gen_db(small_cfg());
  workloads::tpcc::Workload gen(gen_db, workloads::tpcc::Scale::tiny(1));
  const RecoveryFuzzReport rep = run_recovery_fuzz(
      [](db::Database& d) {
        workloads::tpcc::Workload wl(d, workloads::tpcc::Scale::tiny(1));
      },
      [&](std::size_t n, Rng& rng) { return gen.batch(n, rng); },
      fuzz_opts(mode), seed);
  expect_recovered(rep, seed);
}

TEST_P(RecoveryFuzzMatrixTest, CatalogRecoversToWitness) {
  const auto [seed, mode] = GetParam();
  workloads::micro::CatalogOptions wopts;
  wopts.catalog_keys = 120;
  wopts.accounts = 240;
  wopts.reads_per_tx = 4;
  db::Database gen_db(small_cfg());
  workloads::micro::CatalogWorkload gen(gen_db, wopts);
  const RecoveryFuzzReport rep = run_recovery_fuzz(
      [wopts](db::Database& d) { workloads::micro::CatalogWorkload wl(d, wopts); },
      [&](std::size_t n, Rng& rng) { return gen.batch(n, /*reprices=*/2, rng); },
      fuzz_opts(mode), seed);
  expect_recovered(rep, seed);
}

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, RecoveryFuzzMatrixTest,
    ::testing::Combine(::testing::Values(101, 202, 303, 404, 505),
                       ::testing::Values(dur::FaultMode::kTornTail,
                                         dur::FaultMode::kPartialWrite,
                                         dur::FaultMode::kBitFlip,
                                         dur::FaultMode::kFsyncNoop)),
    [](const auto& info) {
      return std::string("seed") +
             std::to_string(std::get<0>(info.param)) + "_" +
             dur::to_string(std::get<1>(info.param));
    });

/// Pipelined-apply matrix cell: the same crash-recovery contract must hold
/// with the async commit queue in the write path (pipeline_depth > 0),
/// where agreed-but-unsynced records die in the queue instead of in the
/// page cache. Every fault mode, two fixed seeds.
TEST(RecoveryFuzzTest, PipelinedApplyRecoversAcrossFaultModes) {
  constexpr dur::FaultMode kModes[] = {
      dur::FaultMode::kTornTail, dur::FaultMode::kPartialWrite,
      dur::FaultMode::kBitFlip, dur::FaultMode::kFsyncNoop};
  for (const std::uint64_t seed : {101u, 505u}) {
    for (const dur::FaultMode mode : kModes) {
      workloads::micro::CatalogOptions wopts;
      wopts.catalog_keys = 120;
      wopts.accounts = 240;
      wopts.reads_per_tx = 4;
      db::Database gen_db(small_cfg());
      workloads::micro::CatalogWorkload gen(gen_db, wopts);
      RecoveryFuzzOptions opts;
      opts.warmup_rounds = 6;
      opts.armed_rounds = 7;
      opts.post_rounds = 3;
      opts.batch_size = 6;
      opts.mode = mode;
      opts.recovery.checkpoint_interval = 3;
      opts.config = small_cfg();
      opts.config.pipeline_depth = 2;
      const RecoveryFuzzReport rep = run_recovery_fuzz(
          [wopts](db::Database& d) {
            workloads::micro::CatalogWorkload wl(d, wopts);
          },
          [&](std::size_t n, Rng& rng) {
            return gen.batch(n, /*reprices=*/2, rng);
          },
          opts, seed);
      EXPECT_TRUE(rep.ok()) << "seed " << seed << " mode "
                            << dur::to_string(mode) << " depth=2\n"
                            << dump_trace(rep);
    }
  }
}

TEST(RecoveryFuzzTest, SameSeedReproducesIdenticalRun) {
  auto once = [] {
    RecoveryFuzzOptions opts;
    opts.warmup_rounds = 5;
    opts.armed_rounds = 5;
    opts.post_rounds = 2;
    opts.batch_size = 5;
    opts.mode = dur::FaultMode::kTornTail;
    opts.recovery.checkpoint_interval = 3;
    return run_recovery_fuzz(bump_setup(), bump_batch, opts, 12345);
  };
  const RecoveryFuzzReport a = once();
  const RecoveryFuzzReport b = once();
  ASSERT_TRUE(a.ok()) << dump_trace(a);
  EXPECT_EQ(a.victim, b.victim);
  EXPECT_EQ(a.crash_syscall_budget, b.crash_syscall_budget);
  EXPECT_EQ(a.state_hash, b.state_hash);
  EXPECT_EQ(a.witness_hash, b.witness_hash);
  EXPECT_EQ(a.trace, b.trace);  // the whole scenario replays exactly
}

// --- directed scenarios -------------------------------------------------------

/// A latent media error (not a crash artifact) flips bits inside a WAL
/// record. On restart the scan must quarantine the record and everything
/// after it, and recovery must complete via the checkpoint chain + leader
/// catch-up — never by crashing on the corrupt frame.
TEST(RecoveryFuzzTest, CorruptWalRecordIsQuarantinedAndRecoveryCompletes) {
  dur::FaultVfs vfs(77);
  RecoveryOptions rec;
  rec.checkpoint_interval = 3;
  rec.vfs = &vfs;
  rec.dur_dir = "dur";
  ReplicatedDb rdb(3, 4242, bump_setup(), small_cfg(), {}, rec);
  rdb.run_ms(1000);
  const int leader = rdb.raft().leader();
  ASSERT_GE(leader, 0);
  const NodeId victim = leader == 0 ? 1 : 0;

  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(6, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(500);
  ASSERT_TRUE(rdb.converged());

  // Rot a byte in the middle of the victim's newest (longest-named) WAL
  // segment — the batches above its last checkpoint.
  const std::string vdir = "dur/r" + std::to_string(victim);
  std::string target;
  for (const std::string& name : vfs.list(vdir)) {
    if (name.rfind("wal-", 0) == 0 && !vfs.read_all(vdir + "/" + name).empty()) {
      target = vdir + "/" + name;  // list() is sorted: keep the newest
    }
  }
  ASSERT_FALSE(target.empty());
  vfs.corrupt(target, vfs.read_all(target).size() / 2, 0x21);

  rdb.crash_replica(victim);
  rdb.run_ms(200);
  rdb.restart_replica(victim);
  for (int d = 0; d < 20 && !rdb.converged(); ++d) rdb.run_ms(2000);

  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
  EXPECT_EQ(hashes[victim], rdb.witness_state_hash());
  ASSERT_NE(rdb.dur_metrics(), nullptr);
  EXPECT_GE(rdb.dur_metrics()->records_quarantined->value(), 1u);
  // The bad suffix is preserved on disk for forensics.
  bool quarantine_file = false;
  for (const std::string& name : vfs.list(vdir)) {
    if (name.rfind("quarantine-", 0) == 0) quarantine_file = true;
  }
  EXPECT_TRUE(quarantine_file);
  EXPECT_FALSE(rdb.quarantined(victim));
  EXPECT_EQ(rdb.deterministic_counter_snapshot(victim),
            rdb.deterministic_counter_snapshot(static_cast<unsigned>(leader)));
}

/// Whole-cluster cold start: destroy the ReplicatedDb (every in-memory
/// structure gone) and rebuild it over the same Vfs. Construction must
/// recover every replica from its own directory — checkpoints + WAL replay —
/// and the cluster must resume accepting traffic.
TEST(RecoveryFuzzTest, ColdStartReconstructsClusterFromDiskAlone) {
  dur::FaultVfs vfs(55);
  RecoveryOptions rec;
  rec.checkpoint_interval = 3;
  rec.vfs = &vfs;
  rec.dur_dir = "dur";

  std::uint64_t hash_before = 0;
  {
    ReplicatedDb rdb(3, 1111, bump_setup(), small_cfg(), {}, rec);
    Rng rng(21);
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(rdb.submit_with_retry(bump_batch(6, rng)));
      rdb.run_ms(100);
    }
    rdb.run_ms(1000);
    ASSERT_TRUE(rdb.converged());
    hash_before = rdb.state_hashes()[0];
    ASSERT_NE(hash_before, 0u);
  }  // power off the whole cluster (unsynced tails survive: clean shutdown)

  ReplicatedDb rdb(3, 1111, bump_setup(), small_cfg(), {}, rec);
  // Before a single message flows, every replica is already back at the
  // pre-shutdown state, from disk alone.
  for (const std::uint64_t h : rdb.state_hashes()) {
    EXPECT_EQ(h, hash_before);
  }
  EXPECT_TRUE(rdb.converged());
  EXPECT_GE(rdb.recovery_stats().durable_recoveries, 3u);
  ASSERT_NE(rdb.dur_metrics(), nullptr);
  const auto* dm = rdb.dur_metrics();
  // Nobody came back empty-handed ("none" = at the mercy of the leader).
  EXPECT_EQ(dm->recovery_none->value(), 0u);
  EXPECT_GE(dm->recovery_checkpoint_wal->value() +
                dm->recovery_checkpoint->value() + dm->recovery_wal->value(),
            3u);

  // And the reconstructed cluster is alive: new traffic commits and applies.
  rdb.run_ms(1000);
  Rng rng(22);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(6, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(1000);
  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_NE(hashes[0], hash_before);  // state advanced past the restart
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
  EXPECT_EQ(rdb.deterministic_counter_snapshot(0),
            rdb.deterministic_counter_snapshot(1));
  EXPECT_EQ(rdb.deterministic_counter_snapshot(1),
            rdb.deterministic_counter_snapshot(2));
}

// --- satellites ---------------------------------------------------------------

/// submit_with_retry must give up at the configured overall deadline when
/// the cluster has lost its majority — in bounded virtual time, regardless
/// of the (much larger) per-call budget the call site passed.
TEST(RecoveryFuzzTest, SubmitTimesOutAtDeadlineWithoutQuorum) {
  RecoveryOptions rec;
  rec.submit_deadline_ms = 1200;
  ReplicatedDb rdb(3, 777, bump_setup(), small_cfg(), {}, rec);
  rdb.run_ms(1000);
  const int leader = rdb.raft().leader();
  ASSERT_GE(leader, 0);
  const NodeId a = static_cast<NodeId>(leader);
  const NodeId b = (a + 1) % 3;
  rdb.crash_replica(a);
  rdb.crash_replica(b);  // one survivor: no quorum, no leader, ever
  rdb.run_ms(300);

  Rng rng(5);
  const SimTime before = rdb.raft().net().now();
  EXPECT_FALSE(rdb.submit_with_retry(bump_batch(4, rng), /*max_wait_ms=*/600000));
  const SimTime elapsed = rdb.raft().net().now() - before;
  EXPECT_GE(elapsed, 1200);  // the full configured budget was spent...
  EXPECT_LE(elapsed, 2400);  // ...and nowhere near the caller's 600 s
  EXPECT_EQ(rdb.recovery_stats().submit_timeouts, 1u);
  EXPECT_EQ(rdb.replica_metrics().submit_timeouts->value(), 1u);
  // The pool entry was reclaimed: nothing can ever commit that command.
  EXPECT_EQ(rdb.recovery_stats().submit_retries > 0, true);
}

/// Retention must never evict the recovery anchor — the newest checkpoint at
/// or below the log compaction point. Dropping it would strand every replica
/// that needs an InstallSnapshot at that boundary.
TEST(RecoveryFuzzTest, CheckpointAnchorSurvivesRetention) {
  CheckpointStore store;
  auto mk = [](LogIndex seq) {
    Checkpoint cp;
    cp.batch_seq = seq;
    cp.state_hash = 0x1000 + seq;
    return cp;
  };
  store.add(mk(2), 2);
  store.add(mk(4), 2);
  store.set_anchor(4);  // log compacted to 4: this image is irreplaceable
  for (LogIndex seq = 6; seq <= 20; seq += 2) store.add(mk(seq), 2);
  // The anchor outlived seven rounds of pruning at max_retained=2...
  ASSERT_NE(store.at(4), nullptr);
  EXPECT_EQ(store.at(4)->state_hash, 0x1000u + 4);
  // ...while ordinary retention still applied around it (anchor + newest 2).
  EXPECT_LE(store.size(), 3u);
  EXPECT_NE(store.latest(), nullptr);
  EXPECT_EQ(store.latest()->batch_seq, 20u);
  EXPECT_EQ(store.at(2), nullptr);  // non-anchor oldies still pruned

  // Moving the anchor releases the old one to normal retention.
  store.set_anchor(20);
  store.add(mk(22), 2);
  store.add(mk(24), 2);
  EXPECT_EQ(store.at(4), nullptr);
  ASSERT_NE(store.at(20), nullptr);
}

// --- long sweep (opt-in) -------------------------------------------------------

TEST(RecoveryFuzzLongTest, WiderSeedAndModeSweep) {
  const char* flag = std::getenv("PROG_CHAOS_LONG");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') {
    GTEST_SKIP() << "set PROG_CHAOS_LONG=1 to run the long recovery-fuzz sweep";
  }
  constexpr dur::FaultMode kModes[] = {
      dur::FaultMode::kTornTail, dur::FaultMode::kPartialWrite,
      dur::FaultMode::kBitFlip, dur::FaultMode::kFsyncNoop};
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    db::Database gen_db(small_cfg());
    workloads::tpcc::Workload gen(gen_db, workloads::tpcc::Scale::tiny(1));
    RecoveryFuzzOptions opts;
    opts.replicas = seed % 2 == 0 ? 5 : 3;
    opts.warmup_rounds = 10;
    opts.armed_rounds = 10;
    opts.post_rounds = 5;
    opts.batch_size = 8;
    opts.mode = kModes[seed % 4];
    opts.max_crash_syscalls = 20 + 20 * (seed % 5);
    opts.recovery.checkpoint_interval = 2 + seed % 3;
    const RecoveryFuzzReport rep = run_recovery_fuzz(
        [](db::Database& d) {
          workloads::tpcc::Workload wl(d, workloads::tpcc::Scale::tiny(1));
        },
        [&](std::size_t n, Rng& rng) { return gen.batch(n, rng); }, opts,
        seed * 1000003);
    // A failing (seed, mode) pair is the whole repro: the run is a pure
    // function of it. CI uploads this log as the failing-seed artifact.
    EXPECT_TRUE(rep.ok()) << "seed " << seed << " mode "
                          << dur::to_string(opts.mode) << "\n"
                          << dump_trace(rep);
  }
}

}  // namespace
}  // namespace prog::consensus
