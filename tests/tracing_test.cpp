// Causal tracing + flight recorder tests (DESIGN.md §11).
//
// Four layers:
//   - recorder mechanics: ring wraparound bounds, context scoping, bounded
//     anomaly dumps through the installed handler;
//   - standalone engine sampling: trace_sample_n head-samples every Nth
//     batch under the engine's local batch id;
//   - end-to-end: a 3-replica durable cluster at sample rate 1 produces one
//     connected span chain per batch — submit → (msgs) → agree → engine
//     phases → WAL fsync → batch done — that the validator accepts;
//   - validator negatives: synthetic streams violating each contract are
//     rejected (and allow_partial relaxes exactly the partial-dump checks).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "consensus/replicated_db.hpp"
#include "db/database.hpp"
#include "dur/fault_vfs.hpp"
#include "lang/builder.hpp"
#include "obs/tracing/tracing.hpp"
#include "obs/tracing/validator.hpp"
#include "workloads/tpcc.hpp"

namespace prog::obs::tracing {
namespace {

// Every test owns the process-global recorder for its duration.
struct RecorderGuard {
  explicit RecorderGuard(FlightRecorder::Options opts) {
    FlightRecorder::instance().enable(opts);
  }
  RecorderGuard() : RecorderGuard(FlightRecorder::Options{}) {}
  ~RecorderGuard() {
    FlightRecorder::instance().set_dump_handler(nullptr);
    FlightRecorder::instance().disable();
  }
};

SpanEvent make_event(SpanKind kind, std::uint64_t batch) {
  SpanEvent ev;
  ev.kind = kind;
  ev.batch_seq = batch;
  return ev;
}

// --- recorder mechanics ------------------------------------------------------

TEST(FlightRecorderTest, RingWraparoundKeepsNewestEvents) {
  FlightRecorder::Options opts;
  opts.lanes = 2;
  opts.lane_capacity = 16;
  RecorderGuard guard(opts);
  for (int i = 0; i < 100; ++i) {
    emit(make_event(SpanKind::kExecute, 7));
  }
  const auto events = FlightRecorder::instance().snapshot();
  // This thread writes one lane: exactly the newest `lane_capacity` survive.
  ASSERT_EQ(events.size(), 16u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 85 + i);  // seqs 85..100 of 1..100
  }
}

TEST(FlightRecorderTest, DisabledRecorderDropsEverything) {
  {
    RecorderGuard guard;
  }
  EXPECT_FALSE(enabled());
  emit(make_event(SpanKind::kExecute, 1));
  trigger(Anomaly::kDivergence, "ignored while disabled");
}

TEST(FlightRecorderTest, ClearDropsRetainedEvents) {
  RecorderGuard guard;
  emit(make_event(SpanKind::kExecute, 1));
  emit(make_event(SpanKind::kExecute, 2));
  EXPECT_EQ(FlightRecorder::instance().snapshot().size(), 2u);
  FlightRecorder::instance().clear();
  EXPECT_TRUE(FlightRecorder::instance().snapshot().empty());
}

TEST(TraceContextTest, ScopedContextNestsAndRestores) {
  EXPECT_EQ(current().batch_seq, 0u);
  EXPECT_FALSE(current().sampled);
  {
    ScopedContext outer({41, 1, true});
    EXPECT_EQ(current().batch_seq, 41u);
    EXPECT_EQ(current().replica, 1u);
    EXPECT_TRUE(current().sampled);
    {
      ScopedContext inner({42, 2, false});
      EXPECT_EQ(current().batch_seq, 42u);
      EXPECT_FALSE(current().sampled);
    }
    EXPECT_EQ(current().batch_seq, 41u);
    EXPECT_TRUE(current().sampled);
  }
  EXPECT_EQ(current().batch_seq, 0u);
}

TEST(FlightRecorderTest, AnomalyDumpIsBoundedAndRendered) {
  FlightRecorder::Options opts;
  opts.lanes = 2;
  opts.lane_capacity = 256;
  opts.dump_max_events = 32;
  RecorderGuard guard(opts);

  std::vector<AnomalyDump> dumps;
  FlightRecorder::instance().set_dump_handler(
      [&dumps](const AnomalyDump& d) { dumps.push_back(d); });

  for (int i = 0; i < 200; ++i) {
    emit(make_event(SpanKind::kExecute, 9));
  }
  {
    ScopedContext ctx({9, 2, true});
    trigger(Anomaly::kDivergence, "injected for the dump test");
  }

  ASSERT_EQ(dumps.size(), 1u);
  const AnomalyDump& d = dumps[0];
  EXPECT_EQ(d.anomaly, Anomaly::kDivergence);
  EXPECT_EQ(d.detail, "injected for the dump test");
  // Bounded to the newest dump_max_events, ending at the kAnomaly marker.
  ASSERT_EQ(d.events.size(), 32u);
  EXPECT_TRUE(std::is_sorted(d.events.begin(), d.events.end(),
                             [](const SpanEvent& a, const SpanEvent& b) {
                               return a.seq < b.seq;
                             }));
  EXPECT_EQ(d.events.back().kind, SpanKind::kAnomaly);
  EXPECT_EQ(d.events.back().anomaly, Anomaly::kDivergence);
  EXPECT_EQ(d.events.back().batch_seq, 9u);
  EXPECT_EQ(d.events.back().replica, 2u);
  // Both renderings are produced and name the anomaly.
  EXPECT_NE(d.text.find("divergence"), std::string::npos);
  EXPECT_NE(d.text.find("injected for the dump test"), std::string::npos);
  EXPECT_NE(d.perfetto_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(FlightRecorder::instance().anomalies(), 1u);
}

// --- standalone engine sampling ---------------------------------------------

constexpr TableId kT = 1;
constexpr FieldId kV = 0;
constexpr Value kKeys = 32;

lang::Proc make_bump() {
  lang::ProcBuilder b("bump");
  auto k = b.param("k", 0, kKeys - 1);
  auto amt = b.param("amt", 1, 9);
  auto row = b.get(kT, k);
  b.put(kT, k, {{kV, row.field(kV) + amt}});
  return std::move(b).build();
}

void bump_setup(db::Database& d) {
  d.register_procedure(make_bump());
  for (Key k = 0; k < static_cast<Key>(kKeys); ++k) {
    d.store().put({kT, k}, store::Row{{kV, 100}}, 0);
  }
  d.finalize();
}

std::vector<sched::TxRequest> bump_batch(std::size_t n, Rng& rng) {
  std::vector<sched::TxRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sched::TxRequest r;
    r.proc = 0;
    r.input.add(rng.uniform(0, kKeys - 1));
    r.input.add(rng.uniform(1, 9));
    out.push_back(std::move(r));
  }
  return out;
}

TEST(EngineTracingTest, StandaloneSamplingRecordsEveryNthBatch) {
  RecorderGuard guard;
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.trace_sample_n = 2;
  db::Database db(cfg);
  bump_setup(db);

  Rng rng(5);
  for (int i = 0; i < 8; ++i) db.execute(bump_batch(6, rng));

  const auto events = FlightRecorder::instance().snapshot();
  ASSERT_FALSE(events.empty());
  std::set<std::uint64_t> done_batches;
  std::uint64_t predicts = 0, executes = 0;
  for (const SpanEvent& e : events) {
    EXPECT_EQ(e.batch_seq % 2, 0u) << "unsampled batch leaked into the ring";
    EXPECT_EQ(e.replica, kNoReplica);  // standalone: no consensus identity
    if (e.kind == SpanKind::kBatchDone) done_batches.insert(e.batch_seq);
    if (e.kind == SpanKind::kPredict) ++predicts;
    if (e.kind == SpanKind::kExecute) ++executes;
  }
  // 8 batches at 1/2 sampling: exactly the even batch ids, each with its
  // per-tx prediction and execution spans.
  EXPECT_EQ(done_batches.size(), 4u);
  EXPECT_GE(predicts, 4u * 1u);
  EXPECT_GE(executes, 4u * 6u);  // every sampled tx commits exactly once

  const auto report = validate_spans(events);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(EngineTracingTest, UnsampledRunEmitsNothing) {
  RecorderGuard guard;
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.trace_sample_n = 0;  // recorder on, engine not sampling
  db::Database db(cfg);
  bump_setup(db);
  Rng rng(6);
  for (int i = 0; i < 4; ++i) db.execute(bump_batch(6, rng));
  EXPECT_TRUE(FlightRecorder::instance().snapshot().empty());
}

// --- end-to-end: replicated + durable ---------------------------------------

consensus::ReplicatedDb::SetupFn replicated_setup() {
  return [](db::Database& d) { bump_setup(d); };
}

TEST(EndToEndTracingTest, ThreeReplicaDurableChainValidates) {
  FlightRecorder::Options opts;
  opts.lane_capacity = 1 << 14;  // hold the whole run: no eviction noise
  RecorderGuard guard(opts);

  dur::FaultVfs vfs(7);
  consensus::RecoveryOptions rec;
  rec.checkpoint_interval = 4;
  rec.vfs = &vfs;
  rec.dur_dir = "dur";
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.trace_sample_n = 1;  // sample every batch
  consensus::ReplicatedDb rdb(3, 12345, replicated_setup(), cfg, {}, rec);
  rdb.run_ms(1000);
  ASSERT_GE(rdb.raft().leader(), 0);

  Rng rng(17);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(bump_batch(5, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(500);
  ASSERT_TRUE(rdb.converged());

  const auto events = FlightRecorder::instance().snapshot();
  const auto report = validate_spans(events);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_GE(report.batches, 5u);
  EXPECT_GT(report.flows, 0u);

  // Pick one agreed batch and assert the full chain is present on all three
  // replicas: submit at the client, then agree → engine → WAL fsync →
  // batch done per replica.
  std::uint64_t probe = 0;
  for (const SpanEvent& e : events) {
    if (e.kind == SpanKind::kAgree) probe = e.batch_seq;
  }
  ASSERT_NE(probe, 0u);
  std::set<std::uint32_t> agreed, fsynced, finished;
  bool submitted = false;
  for (const SpanEvent& e : events) {
    if (e.batch_seq != probe) continue;
    switch (e.kind) {
      case SpanKind::kSubmit: submitted = true; break;
      case SpanKind::kAgree: agreed.insert(e.replica); break;
      case SpanKind::kWalFsync: fsynced.insert(e.replica); break;
      case SpanKind::kBatchDone: finished.insert(e.replica); break;
      default: break;
    }
  }
  EXPECT_TRUE(submitted);
  EXPECT_EQ(agreed.size(), 3u);
  EXPECT_EQ(fsynced.size(), 3u);
  EXPECT_EQ(finished.size(), 3u);

  // The span-tree rendering names every replica and the WAL barrier.
  const std::string tree = format_span_tree(events, probe);
  ASSERT_FALSE(tree.empty());
  EXPECT_NE(tree.find("submit"), std::string::npos);
  EXPECT_NE(tree.find("replica 0"), std::string::npos);
  EXPECT_NE(tree.find("replica 1"), std::string::npos);
  EXPECT_NE(tree.find("replica 2"), std::string::npos);
  EXPECT_NE(tree.find("wal_fsync"), std::string::npos);

  // Perfetto export carries per-replica processes and flow arrows.
  const std::string json = to_perfetto_json(events);
  EXPECT_NE(json.find("\"name\":\"replica 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"replica 2\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

// The acceptance scenario: a sampled TPC-C batch yields one connected span
// tree from submit to fsync-commit across all three replicas, accepted by
// the trace checker (flow pairing + connectivity included).
TEST(EndToEndTracingTest, SampledTpccBatchConnectsAcrossReplicas) {
  FlightRecorder::Options opts;
  opts.lane_capacity = 1 << 14;
  RecorderGuard guard(opts);

  db::Database gen_db(sched::EngineConfig{});
  workloads::tpcc::Workload gen(gen_db, workloads::tpcc::Scale::tiny(1));

  dur::FaultVfs vfs(21);
  consensus::RecoveryOptions rec;
  rec.checkpoint_interval = 4;
  rec.vfs = &vfs;
  rec.dur_dir = "dur";
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.trace_sample_n = 2;  // head sampling on: every 2nd submitted batch
  consensus::ReplicatedDb rdb(
      3, 777,
      [](db::Database& d) {
        workloads::tpcc::Workload wl(d, workloads::tpcc::Scale::tiny(1));
      },
      cfg, {}, rec);
  rdb.run_ms(1000);
  ASSERT_GE(rdb.raft().leader(), 0);

  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(gen.batch(8, rng)));
    rdb.run_ms(100);
  }
  rdb.run_ms(500);
  ASSERT_TRUE(rdb.converged());

  const auto events = FlightRecorder::instance().snapshot();
  const auto report = validate_spans(events);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_GT(report.flows, 0u);

  // Only the head-sampled batches are recorded, and each recorded batch is
  // complete: submit, three agrees, three WAL fsyncs, three batch-dones.
  std::set<std::uint64_t> batches;
  for (const SpanEvent& e : events) {
    if (e.kind == SpanKind::kAgree) batches.insert(e.batch_seq);
  }
  ASSERT_GE(batches.size(), 2u);
  EXPECT_LT(batches.size(), 6u);  // sampling dropped the odd batches
  for (const std::uint64_t b : batches) {
    std::set<std::uint32_t> agreed, fsynced, finished;
    bool submitted = false;
    for (const SpanEvent& e : events) {
      if (e.batch_seq != b) continue;
      switch (e.kind) {
        case SpanKind::kSubmit: submitted = true; break;
        case SpanKind::kAgree: agreed.insert(e.replica); break;
        case SpanKind::kWalFsync: fsynced.insert(e.replica); break;
        case SpanKind::kBatchDone: finished.insert(e.replica); break;
        default: break;
      }
    }
    EXPECT_TRUE(submitted) << "batch " << b;
    EXPECT_EQ(agreed.size(), 3u) << "batch " << b;
    EXPECT_EQ(fsynced.size(), 3u) << "batch " << b;
    EXPECT_EQ(finished.size(), 3u) << "batch " << b;
    EXPECT_FALSE(format_span_tree(events, b).empty());
  }
}

// --- validator negatives -----------------------------------------------------

SpanEvent stamped(std::uint64_t seq, SpanKind kind, std::uint64_t batch,
                  std::uint32_t replica = kNoReplica) {
  SpanEvent ev = make_event(kind, batch);
  ev.seq = seq;
  ev.replica = replica;
  return ev;
}

TEST(ValidatorTest, AcceptsAMinimalWellFormedChain) {
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kSubmit, 1));
  evs.push_back(stamped(2, SpanKind::kAgree, 1, 0));
  auto predict = stamped(3, SpanKind::kPredict, 1, 0);
  predict.slot = 0;
  evs.push_back(predict);
  auto exec = stamped(4, SpanKind::kExecute, 1, 0);
  exec.slot = 0;
  evs.push_back(exec);
  evs.push_back(stamped(5, SpanKind::kWalFsync, 1, 0));
  evs.push_back(stamped(6, SpanKind::kBatchDone, 1, 0));
  const auto report = validate_spans(evs);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.batches, 1u);
}

TEST(ValidatorTest, RejectsDuplicateCausalStamps) {
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kSubmit, 1));
  evs.push_back(stamped(1, SpanKind::kAgree, 1, 0));
  EXPECT_FALSE(validate_spans(evs).ok());
}

TEST(ValidatorTest, RejectsAgreeBeforeSubmit) {
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kAgree, 1, 0));
  evs.push_back(stamped(2, SpanKind::kSubmit, 1));
  EXPECT_FALSE(validate_spans(evs).ok());
}

TEST(ValidatorTest, RejectsEngineSpanBeforeAgreement) {
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kSubmit, 1));
  evs.push_back(stamped(2, SpanKind::kPredict, 1, 0));
  evs.push_back(stamped(3, SpanKind::kAgree, 1, 0));
  EXPECT_FALSE(validate_spans(evs).ok());
}

TEST(ValidatorTest, RejectsWalFsyncBeforeEngineFinished) {
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kSubmit, 1));
  evs.push_back(stamped(2, SpanKind::kAgree, 1, 0));
  evs.push_back(stamped(3, SpanKind::kWalFsync, 1, 0));
  evs.push_back(stamped(4, SpanKind::kEnqueue, 1, 0));
  EXPECT_FALSE(validate_spans(evs).ok());
}

TEST(ValidatorTest, RejectsDoubleCommitOfOneSlot) {
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kAgree, 1, 0));
  auto a = stamped(2, SpanKind::kExecute, 1, 0);
  a.slot = 3;
  auto b = stamped(3, SpanKind::kExecute, 1, 0);
  b.slot = 3;
  evs.push_back(a);
  evs.push_back(b);
  EXPECT_FALSE(validate_spans(evs).ok());
}

TEST(ValidatorTest, RejectsAbortAfterCommitOfSameSlot) {
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kAgree, 1, 0));
  auto commit = stamped(2, SpanKind::kExecute, 1, 0);
  commit.slot = 3;
  commit.round = 1;
  auto abort = stamped(3, SpanKind::kAbort, 1, 0);
  abort.slot = 3;
  abort.round = 2;
  evs.push_back(commit);
  evs.push_back(abort);
  EXPECT_FALSE(validate_spans(evs).ok());
}

TEST(ValidatorTest, RecvWithoutSendRejectedUnlessPartial) {
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kSubmit, 1));
  auto recv = stamped(2, SpanKind::kMsgRecv, 1, 1);
  recv.peer = 0;
  evs.push_back(recv);
  EXPECT_FALSE(validate_spans(evs).ok());
  ValidateOptions partial;
  partial.allow_partial = true;
  EXPECT_TRUE(validate_spans(evs, partial).ok());
}

TEST(ValidatorTest, ConnectivityRequiresMessageTraffic) {
  // Two replicas agree but no message traffic links them: the later one is
  // unreachable, which the full check rejects and allow_partial tolerates.
  std::vector<SpanEvent> evs;
  evs.push_back(stamped(1, SpanKind::kSubmit, 1));
  evs.push_back(stamped(2, SpanKind::kAgree, 1, 0));
  evs.push_back(stamped(3, SpanKind::kAgree, 1, 1));
  EXPECT_FALSE(validate_spans(evs).ok());

  // Adding the send/recv pair from replica 0 to replica 1 repairs it.
  auto send = stamped(10, SpanKind::kMsgSend, 1, 0);
  send.peer = 1;
  auto recv = stamped(11, SpanKind::kMsgRecv, 1, 1);
  recv.peer = 0;
  std::vector<SpanEvent> linked;
  linked.push_back(stamped(1, SpanKind::kSubmit, 1));
  linked.push_back(stamped(2, SpanKind::kAgree, 1, 0));
  send.seq = 3;
  recv.seq = 4;
  linked.push_back(send);
  linked.push_back(recv);
  linked.push_back(stamped(5, SpanKind::kAgree, 1, 1));
  const auto report = validate_spans(linked);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.flows, 1u);
}

}  // namespace
}  // namespace prog::obs::tracing
