// Tests for the extension features: client-side IT prediction offload
// (paper Section III-C, described as future work), input validation, and
// read-only-table lock elision.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "lang/builder.hpp"
#include "workloads/tpcc.hpp"

namespace prog {
namespace {

constexpr TableId kT = 1;
constexpr TableId kCatalog = 2;
constexpr FieldId kF = 0;

lang::Proc make_pay() {
  lang::ProcBuilder b("pay");
  auto k = b.param("k", 0, 99);
  auto amt = b.param("amt", 1, 100);
  auto h = b.get(kT, k);
  b.put(kT, k, {{kF, h.field(kF) + amt}});
  return std::move(b).build();
}

lang::Proc make_lookup_pay() {
  // Reads an immutable catalog row (never written by any proc) + pays.
  lang::ProcBuilder b("lookup_pay");
  auto k = b.param("k", 0, 99);
  auto c = b.param("c", 0, 9);
  auto cat = b.get(kCatalog, c);
  auto h = b.get(kT, k);
  b.put(kT, k, {{kF, h.field(kF) + cat.field(kF)}});
  return std::move(b).build();
}

TEST(ClientPredictionTest, DatabaseComputesItPredictions) {
  db::Database db;
  const auto pay = db.register_procedure(make_pay());
  lang::TxInput in;
  in.add(7).add(10);
  const auto pred = db.predict_client(pay, in);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->keys, (std::vector<TKey>{{kT, 7}}));
  EXPECT_TRUE(pred->pivots.empty());
}

TEST(ClientPredictionTest, RefusedForDependentAndReadOnly) {
  db::Database db;
  lang::ProcBuilder b("chase");
  auto x = b.param("x", 0, 10);
  auto h = b.get(kT, x);
  b.put(kT, h.field(kF), {{kF, x}});
  const auto dt = db.register_procedure(std::move(b).build());
  lang::TxInput in;
  in.add(1);
  EXPECT_EQ(db.predict_client(dt, in), nullptr);
}

TEST(ClientPredictionTest, EngineHonorsClientPredictions) {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.accept_client_predictions = true;
  cfg.check_containment = true;
  db::Database db(cfg);
  const auto pay = db.register_procedure(make_pay());
  for (Key k = 0; k < 100; ++k) {
    db.store().put({kT, k}, store::Row{{kF, 0}}, 0);
  }
  db.finalize();

  std::vector<sched::TxRequest> batch;
  for (Value i = 0; i < 20; ++i) {
    sched::TxRequest r;
    r.proc = pay;
    r.input.add(i % 10).add(5);
    r.client_pred = db.predict_client(pay, r.input);
    ASSERT_NE(r.client_pred, nullptr);
    batch.push_back(std::move(r));
  }
  const auto result = db.execute(std::move(batch));
  EXPECT_EQ(result.committed, 20u);
  for (Key k = 0; k < 10; ++k) {
    EXPECT_EQ(db.store().get({kT, k})->at(kF), 10);
  }
}

TEST(ClientPredictionTest, OffloadPreservesStateDeterminism) {
  auto run = [&](bool offload) {
    sched::EngineConfig cfg;
    cfg.workers = 4;
    cfg.accept_client_predictions = offload;
    db::Database db(cfg);
    const auto pay = db.register_procedure(make_pay());
    for (Key k = 0; k < 100; ++k) {
      db.store().put({kT, k}, store::Row{{kF, 0}}, 0);
    }
    db.finalize();
    Rng rng(3);
    for (int b = 0; b < 5; ++b) {
      std::vector<sched::TxRequest> batch;
      for (int i = 0; i < 30; ++i) {
        sched::TxRequest r;
        r.proc = pay;
        r.input.add(rng.uniform(0, 99)).add(rng.uniform(1, 100));
        if (offload) r.client_pred = db.predict_client(pay, r.input);
        batch.push_back(std::move(r));
      }
      db.execute(std::move(batch));
    }
    return db.state_hash();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(LockElisionTest, ImmutableTableReadsTakeNoLocks) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  cfg.check_containment = true;
  cfg.audit_commit_order = true;
  db::Database db(cfg);
  const auto lp = db.register_procedure(make_lookup_pay());
  for (Key k = 0; k < 100; ++k) {
    db.store().put({kT, k}, store::Row{{kF, 0}}, 0);
  }
  for (Key c = 0; c < 10; ++c) {
    db.store().put({kCatalog, c}, store::Row{{kF, Value(c)}}, 0);
  }
  db.finalize();

  // All transactions read catalog row 3 but write distinct keys: with
  // elision they are fully concurrent and all commit.
  std::vector<sched::TxRequest> batch;
  for (Value i = 0; i < 50; ++i) {
    sched::TxRequest r;
    r.proc = lp;
    r.input.add(i % 50).add(3);
    batch.push_back(std::move(r));
  }
  const auto result = db.execute(std::move(batch));
  EXPECT_EQ(result.committed, 50u);
  EXPECT_EQ(db.store().get({kT, 5})->at(kF), 3);
}

TEST(ParallelEnqueueTest, PreservesStateAndCommitsEverything) {
  auto run = [&](bool parallel, unsigned workers) {
    sched::EngineConfig cfg;
    cfg.workers = workers;
    cfg.parallel_enqueue = parallel;
    cfg.check_containment = true;
    db::Database db(cfg);
    const auto pay = db.register_procedure(make_pay());
    for (Key k = 0; k < 100; ++k) {
      db.store().put({kT, k}, store::Row{{kF, 0}}, 0);
    }
    db.finalize();
    Rng rng(21);
    std::uint64_t committed = 0;
    for (int b = 0; b < 6; ++b) {
      std::vector<sched::TxRequest> batch;
      for (int i = 0; i < 40; ++i) {
        sched::TxRequest r;
        r.proc = pay;
        r.input.add(rng.uniform(0, 20)).add(rng.uniform(1, 100));  // hot
        batch.push_back(std::move(r));
      }
      committed += db.execute(std::move(batch)).committed;
    }
    EXPECT_EQ(committed, 240u);
    return db.state_hash();
  };
  const auto ref = run(false, 4);
  EXPECT_EQ(ref, run(true, 4));
  EXPECT_EQ(ref, run(true, 1));
  EXPECT_EQ(ref, run(true, 8));
}

TEST(ValidateInputTest, AcceptsInBoundsRejectsOutOfBounds) {
  const lang::Proc pay = make_pay();
  lang::TxInput ok;
  ok.add(5).add(50);
  EXPECT_NO_THROW(lang::validate_input(pay, ok));

  lang::TxInput low;
  low.add(5).add(0);  // amt below 1
  EXPECT_THROW(lang::validate_input(pay, low), UsageError);
  lang::TxInput high;
  high.add(100).add(5);  // k above 99
  EXPECT_THROW(lang::validate_input(pay, high), UsageError);
  lang::TxInput missing;
  missing.add(5);
  EXPECT_THROW(lang::validate_input(pay, missing), UsageError);
}

TEST(ValidateInputTest, ArrayShapeChecked) {
  lang::ProcBuilder b("arr");
  auto n = b.param("n", 1, 3);
  auto ids = b.param_array("ids", 3, 0, 9);
  b.for_(b.lit(0), n, 3, [&](lang::ProcBuilder& body, lang::Val i) {
    body.put(kT, ids[i], {{kF, body.lit(1)}});
  });
  const lang::Proc proc = std::move(b).build();

  lang::TxInput ok;
  ok.add(2).add_array({1, 2, 3});
  EXPECT_NO_THROW(lang::validate_input(proc, ok));

  lang::TxInput short_arr;
  short_arr.add(2).add_array({1, 2});
  EXPECT_THROW(lang::validate_input(proc, short_arr), UsageError);
  lang::TxInput bad_elem;
  bad_elem.add(2).add_array({1, 2, 99});
  EXPECT_THROW(lang::validate_input(proc, bad_elem), UsageError);
  lang::TxInput scalar_for_array;
  scalar_for_array.add(2).add(1);
  EXPECT_THROW(lang::validate_input(proc, scalar_for_array), UsageError);
}

TEST(ValidateInputTest, TpccGeneratorStaysInBounds) {
  db::Database db;
  workloads::tpcc::Workload wl(db, workloads::tpcc::Scale::tiny(2));
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const sched::TxRequest r = wl.next(rng);
    EXPECT_NO_THROW(lang::validate_input(db.procedure(r.proc), r.input));
  }
}

}  // namespace
}  // namespace prog
