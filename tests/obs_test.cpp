// Registry core tests: instrument semantics, label canonicalization,
// idempotent registration, concurrent increment stress, stable snapshot
// ordering, and the deterministic-subset serialization that the replica
// divergence oracle builds on (DESIGN.md §9).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace prog::obs {
namespace {

TEST(CounterTest, IncrementAndRestore) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset_for_restore(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, Log2BucketPlacement) {
  Histogram h;
  h.observe(0);    // bucket 0 (bit_width 0)
  h.observe(1);    // bucket 1
  h.observe(2);    // bucket 2 (upper bound 3)
  h.observe(3);    // bucket 2
  h.observe(4);    // bucket 3 (upper bound 7)
  h.observe(-9);   // clamped to 0 -> bucket 0
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_bound(10), 1023u);
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  Histogram h;
  h.observe(std::int64_t{1} << 62);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(LabelsTest, CanonicalizationSortsAndEscapes) {
  EXPECT_EQ(canonical_labels({}), "");
  EXPECT_EQ(canonical_labels({{"b", "2"}, {"a", "1"}}), "a=\"1\",b=\"2\"");
  EXPECT_EQ(canonical_labels({{"k", "a\"b\\c\nd"}}),
            "k=\"a\\\"b\\\\c\\nd\"");
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry reg;
  Counter& a = reg.counter("x_total", "help", Determinism::kDeterministic);
  Counter& b = reg.counter("x_total", "help", Determinism::kDeterministic);
  EXPECT_EQ(&a, &b);  // same instrument, not a new one
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // Distinct label sets are distinct instruments of the same family.
  Counter& l1 = reg.counter("y_total", "h", Determinism::kTimingDependent,
                            {{"class", "rot"}});
  Counter& l2 = reg.counter("y_total", "h", Determinism::kTimingDependent,
                            {{"class", "it"}});
  EXPECT_NE(&l1, &l2);
  // Label order does not matter — the canonical form does.
  Counter& l3 = reg.counter("z_total", "h", Determinism::kTimingDependent,
                            {{"a", "1"}, {"b", "2"}});
  Counter& l4 = reg.counter("z_total", "h", Determinism::kTimingDependent,
                            {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&l3, &l4);
  EXPECT_EQ(reg.families(), 3u);
}

TEST(RegistryTest, ConcurrentIncrementStress) {
  Registry reg;
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIters = 20000;
  // Handles resolved up front (the documented hot-path discipline) plus
  // racing registration of the same families from every thread.
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&reg] {
      Counter& c = reg.counter("stress_total", "h");
      Gauge& g = reg.gauge("stress_gauge", "h");
      Histogram& h = reg.histogram("stress_us", "h");
      for (unsigned i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1);
        h.observe(static_cast<std::int64_t>(i % 1024));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(reg.counter("stress_total", "h").value(),
            std::uint64_t{kThreads} * kIters);
  EXPECT_EQ(reg.gauge("stress_gauge", "h").value(),
            static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("stress_us", "h").count(),
            std::uint64_t{kThreads} * kIters);
  EXPECT_EQ(reg.families(), 3u);
}

TEST(RegistryTest, SnapshotIsStableOrdered) {
  // Register in scrambled order; snapshot must come back sorted by
  // (name, labels) regardless of shard hashing or insertion order.
  Registry reg;
  reg.counter("zeta_total", "h");
  reg.gauge("alpha_depth", "h");
  reg.counter("mid_total", "h", Determinism::kTimingDependent,
              {{"class", "rot"}});
  reg.counter("mid_total", "h", Determinism::kTimingDependent,
              {{"class", "it"}});
  reg.histogram("beta_us", "h");

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    const bool ordered =
        snap[i - 1].name < snap[i].name ||
        (snap[i - 1].name == snap[i].name &&
         snap[i - 1].labels < snap[i].labels);
    EXPECT_TRUE(ordered) << snap[i - 1].name << " vs " << snap[i].name;
  }
  EXPECT_EQ(snap[0].name, "alpha_depth");
  EXPECT_EQ(snap[1].name, "beta_us");
  EXPECT_EQ(snap[2].name, "mid_total");
  EXPECT_EQ(snap[2].labels, "class=\"it\"");  // labels tie-broken too
  EXPECT_EQ(snap[3].labels, "class=\"rot\"");
  EXPECT_EQ(snap[4].name, "zeta_total");
}

TEST(RegistryTest, SnapshotGolden) {
  Registry reg;
  reg.counter("c_total", "h", Determinism::kDeterministic).inc(3);
  reg.gauge("g_depth", "h").set(-2);
  Histogram& h = reg.histogram("h_us", "h");
  h.observe(1);
  h.observe(5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "c_total");
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_TRUE(snap[0].deterministic());
  EXPECT_EQ(snap[0].value, 3);
  EXPECT_EQ(snap[1].value, -2);
  EXPECT_EQ(snap[2].count, 2u);
  EXPECT_EQ(snap[2].sum, 6);
  ASSERT_EQ(snap[2].buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(snap[2].buckets[1], 1u);  // value 1
  EXPECT_EQ(snap[2].buckets[3], 1u);  // value 5 (bounds (3, 7])
}

TEST(RegistryTest, DeterministicSubsetAndSerialization) {
  // Two registries, same deterministic values, different timing noise and
  // different registration order: serialize_deterministic must agree.
  auto fill = [](Registry& reg, bool scrambled, std::int64_t noise) {
    if (scrambled) {
      reg.histogram("wall_us", "h").observe(noise);
      reg.counter("b_total", "h", Determinism::kDeterministic,
                  {{"class", "it"}})
          .inc(5);
      reg.counter("a_total", "h", Determinism::kDeterministic).inc(2);
      reg.counter("b_total", "h", Determinism::kDeterministic,
                  {{"class", "rot"}})
          .inc(7);
    } else {
      reg.counter("a_total", "h", Determinism::kDeterministic).inc(2);
      reg.counter("b_total", "h", Determinism::kDeterministic,
                  {{"class", "rot"}})
          .inc(7);
      reg.counter("b_total", "h", Determinism::kDeterministic,
                  {{"class", "it"}})
          .inc(5);
      reg.histogram("wall_us", "h").observe(noise);
    }
  };
  Registry r1, r2;
  fill(r1, false, 123);
  fill(r2, true, 999888);

  EXPECT_EQ(r1.deterministic_snapshot().size(), 3u);
  const std::string s1 = r1.serialize_deterministic();
  const std::string s2 = r2.serialize_deterministic();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1,
            "a_total 2\n"
            "b_total{class=\"it\"} 5\n"
            "b_total{class=\"rot\"} 7\n");
}

TEST(SnapshotQuantileTest, UpperBoundEstimate) {
  Registry reg;
  Histogram& h = reg.histogram("q_us", "h");
  for (int i = 0; i < 99; ++i) h.observe(100);   // bucket 7, bound 127
  h.observe(100000);                             // bucket 17, bound 131071
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot_quantile(snap[0], 0.50), 127.0);
  EXPECT_DOUBLE_EQ(snapshot_quantile(snap[0], 0.999), 131071.0);
  MetricSnapshot empty;
  EXPECT_DOUBLE_EQ(snapshot_quantile(empty, 0.5), 0.0);
}

}  // namespace
}  // namespace prog::obs
