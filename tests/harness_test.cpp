// Tests for the throughput harness itself (trial accounting, sustainability
// verdicts, the search), using the micro workload as the subject.
#include <gtest/gtest.h>

#include <memory>

#include "benchutil/harness.hpp"
#include "workloads/microbench.hpp"

namespace prog::benchutil {
namespace {

class MicroCase final : public CaseContext {
 public:
  explicit MicroCase(const sched::EngineConfig& cfg) : db_(cfg), rng_(1) {
    workloads::micro::Options opts;
    opts.keys = 2000;
    wl_ = std::make_unique<workloads::micro::Workload>(db_, opts);
  }
  db::Database& database() override { return db_; }
  std::vector<sched::TxRequest> make_batch(std::size_t n) override {
    return wl_->batch(n, rng_);
  }

 private:
  db::Database db_;
  std::unique_ptr<workloads::micro::Workload> wl_;
  Rng rng_;
};

CaseFactory micro_factory() {
  return [](const sched::EngineConfig& cfg) {
    return std::make_unique<MicroCase>(cfg);
  };
}

TrialOptions quick_opts() {
  TrialOptions o;
  o.warmup_batches = 1;
  o.measured_batches = 4;
  o.modeled = true;
  o.modeled_workers = 8;
  return o;
}

TEST(HarnessTest, TrialAccountsCommitsAndThroughput) {
  sched::EngineConfig cfg;
  const TrialStats s = run_trial(micro_factory(), cfg, 20, quick_opts());
  EXPECT_EQ(s.committed, 4u * 20u);  // measured batches only
  EXPECT_GT(s.throughput_tps, 0);
  EXPECT_GT(s.p99_ms, 0);
  EXPECT_TRUE(s.sustainable);  // tiny batches of µs-scale transactions
  EXPECT_EQ(s.aborts, 0u);     // micro RMW is an IT
}

TEST(HarnessTest, ImpossibleLimitIsUnsustainable) {
  sched::EngineConfig cfg;
  TrialOptions opts = quick_opts();
  opts.p99_limit_ms = 1e-6;
  const TrialStats s = run_trial(micro_factory(), cfg, 20, opts);
  EXPECT_FALSE(s.sustainable);
}

TEST(HarnessTest, SearchFindsAPositiveSustainableSize) {
  sched::EngineConfig cfg;
  const SustainableResult r =
      max_sustainable(micro_factory(), cfg, quick_opts(), 64);
  EXPECT_GE(r.batch_size, 4u);
  EXPECT_LE(r.batch_size, 64u);
  EXPECT_TRUE(r.stats.sustainable);
}

TEST(HarnessTest, SearchReportsZeroWhenNothingSustains) {
  sched::EngineConfig cfg;
  TrialOptions opts = quick_opts();
  opts.p99_limit_ms = 1e-6;
  const SustainableResult r = max_sustainable(micro_factory(), cfg, opts, 32);
  EXPECT_EQ(r.batch_size, 0u);
  EXPECT_FALSE(r.stats.sustainable);
}

TEST(HarnessTest, ModeledAndWallClockBothRun) {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  TrialOptions opts = quick_opts();
  opts.modeled = false;  // wall-clock path
  const TrialStats s = run_trial(micro_factory(), cfg, 10, opts);
  EXPECT_EQ(s.committed, 4u * 10u);
  EXPECT_GT(s.p99_ms, 0);
}

}  // namespace
}  // namespace prog::benchutil
