// Tests for the multi-versioned store.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "store/store.hpp"

namespace prog::store {
namespace {

TEST(RowTest, SetGetMergeHash) {
  Row r;
  r.set(1, 10);
  r.set(2, 20);
  EXPECT_EQ(r.at(1), 10);
  EXPECT_EQ(r.get_or(3, -1), -1);
  EXPECT_THROW(r.at(3), UsageError);
  Row s;
  s.set(2, 99);
  s.set(4, 40);
  r.merge_from(s);
  EXPECT_EQ(r.at(2), 99);
  EXPECT_EQ(r.at(4), 40);
  EXPECT_EQ(r.field_count(), 3u);
}

TEST(RowTest, HashIsContentBased) {
  Row a{{1, 10}, {2, 20}};
  Row b;
  b.set(2, 20);
  b.set(1, 10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(1, 11);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(StoreTest, PutGetLatest) {
  VersionedStore s;
  s.put({1, 5}, Row{{0, 42}}, 1);
  const RowPtr r = s.get({1, 5});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->at(0), 42);
  EXPECT_EQ(s.get({1, 6}), nullptr);
  EXPECT_EQ(s.get({2, 5}), nullptr);
}

TEST(StoreTest, SnapshotIsolation) {
  VersionedStore s;
  s.put({1, 5}, Row{{0, 1}}, 1);
  s.put({1, 5}, Row{{0, 2}}, 2);
  s.put({1, 5}, Row{{0, 3}}, 5);
  EXPECT_EQ(s.get({1, 5}, 0), nullptr);
  EXPECT_EQ(s.get({1, 5}, 1)->at(0), 1);
  EXPECT_EQ(s.get({1, 5}, 2)->at(0), 2);
  EXPECT_EQ(s.get({1, 5}, 4)->at(0), 2);  // between versions
  EXPECT_EQ(s.get({1, 5}, 5)->at(0), 3);
  EXPECT_EQ(s.get({1, 5})->at(0), 3);
}

TEST(StoreTest, SameBatchOverwrite) {
  VersionedStore s;
  s.put({1, 1}, Row{{0, 1}}, 3);
  s.put({1, 1}, Row{{0, 2}}, 3);
  EXPECT_EQ(s.get({1, 1}, 3)->at(0), 2);
  EXPECT_EQ(s.version_count(), 1u);
}

TEST(StoreTest, NonMonotonicBatchRejected) {
  VersionedStore s;
  s.put({1, 1}, Row{{0, 1}}, 5);
  EXPECT_THROW(s.put({1, 1}, Row{{0, 2}}, 4), InvariantError);
}

TEST(StoreTest, TombstonesHideRows) {
  VersionedStore s;
  s.put({1, 1}, Row{{0, 1}}, 1);
  s.del({1, 1}, 2);
  EXPECT_NE(s.get({1, 1}, 1), nullptr);
  EXPECT_EQ(s.get({1, 1}, 2), nullptr);
  EXPECT_EQ(s.get({1, 1}), nullptr);
  s.put({1, 1}, Row{{0, 9}}, 3);  // resurrection
  EXPECT_EQ(s.get({1, 1})->at(0), 9);
}

TEST(StoreTest, VersionHashDistinguishesVersions) {
  VersionedStore s;
  EXPECT_EQ(s.version_hash({1, 1}), 0u);
  s.put({1, 1}, Row{{0, 1}}, 1);
  const auto h1 = s.version_hash({1, 1});
  EXPECT_NE(h1, 0u);
  s.put({1, 1}, Row{{0, 2}}, 2);
  EXPECT_NE(s.version_hash({1, 1}), h1);
  EXPECT_EQ(s.version_hash({1, 1}, 1), h1);  // snapshot pinned
  s.del({1, 1}, 3);
  EXPECT_EQ(s.version_hash({1, 1}), 0u);
}

TEST(StoreTest, GcKeepsWatermarkVisibility) {
  VersionedStore s;
  for (BatchId b = 1; b <= 10; ++b) s.put({1, 1}, Row{{0, Value(b)}}, b);
  EXPECT_EQ(s.version_count(), 10u);
  s.gc_before(7);
  EXPECT_EQ(s.get({1, 1}, 7)->at(0), 7);
  EXPECT_EQ(s.get({1, 1}, 8)->at(0), 8);
  EXPECT_EQ(s.get({1, 1})->at(0), 10);
  EXPECT_EQ(s.version_count(), 4u);  // versions 7..10
}

TEST(StoreTest, GcDropsDeadTombstones) {
  VersionedStore s;
  s.put({1, 1}, Row{{0, 1}}, 1);
  s.del({1, 1}, 2);
  s.gc_before(5);
  EXPECT_EQ(s.version_count(), 0u);
  EXPECT_EQ(s.get({1, 1}), nullptr);
}

TEST(StoreTest, StateHashEqualIffStateEqual) {
  VersionedStore a, b;
  a.put({1, 1}, Row{{0, 1}}, 1);
  a.put({1, 2}, Row{{0, 2}}, 1);
  b.put({1, 2}, Row{{0, 2}}, 1);  // insertion order differs
  b.put({1, 1}, Row{{0, 1}}, 1);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  b.put({1, 2}, Row{{0, 99}}, 2);
  EXPECT_NE(a.state_hash(), b.state_hash());
  EXPECT_EQ(a.state_hash(1), b.state_hash(1));
}

TEST(StoreTest, StateHashAtSnapshot) {
  VersionedStore s;
  s.put({1, 1}, Row{{0, 1}}, 1);
  const auto h1 = s.state_hash(1);
  s.put({1, 1}, Row{{0, 2}}, 2);
  EXPECT_EQ(s.state_hash(1), h1);
  EXPECT_NE(s.state_hash(2), h1);
}

TEST(StoreTest, SizeCountsLiveKeys) {
  VersionedStore s;
  s.put({1, 1}, Row{}, 1);
  s.put({1, 2}, Row{}, 1);
  s.put({2, 1}, Row{}, 1);
  EXPECT_EQ(s.size(), 3u);
  s.del({1, 2}, 2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.size(1), 3u);
}

TEST(StoreTest, ViewsReadThroughCorrectSnapshot) {
  VersionedStore s;
  s.put({1, 1}, Row{{0, 1}}, 1);
  s.put({1, 1}, Row{{0, 2}}, 2);
  SnapshotView snap(s, 1);
  LiveView live(s);
  EXPECT_EQ(snap.get({1, 1})->at(0), 1);
  EXPECT_EQ(live.get({1, 1})->at(0), 2);
}

TEST(StoreTest, ConcurrentDisjointWritesAndReads) {
  VersionedStore s;
  constexpr int kThreads = 8;
  constexpr int kKeys = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = t; k < kKeys; k += kThreads) {
        s.put({1, static_cast<Key>(k)}, Row{{0, Value(k)}}, 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  threads.clear();
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        const RowPtr r = s.get({1, static_cast<Key>(k)});
        if (r == nullptr || r->at(0) != k) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(s.size(), static_cast<std::size_t>(kKeys));
}

TEST(StoreTest, StatsCount) {
  VersionedStore s;
  s.put({1, 1}, Row{}, 1);
  s.get({1, 1});
  s.get({1, 2});
  s.del({1, 1}, 2);
  EXPECT_EQ(s.stats().puts.load(), 1u);
  EXPECT_EQ(s.stats().gets.load(), 2u);
  EXPECT_EQ(s.stats().dels.load(), 1u);
}

}  // namespace
}  // namespace prog::store
