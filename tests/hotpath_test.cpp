// Tests for the scheduler hot-path overhaul (DESIGN.md §10):
//  - SmallVec (the small-buffer key-set / prediction-arena primitive);
//  - the epoch-arena lock table: pow2 shard rounding, O(1) entry counter,
//    epoch reuse, rehash under load, shared-read grant edge cases, and a
//    randomized equivalence stress against an in-test reference model (a
//    plain map of per-key FIFO deques implementing the grant rules
//    literally);
//  - the work-stealing ready deque: owner LIFO, thief FIFO, growth, and a
//    concurrent steal stress (exactly-once delivery);
//  - engine-level guarantees: byte-identical deterministic telemetry and
//    state across 1/2/8 workers, and the telemetry lock-depth gauge never
//    scanning a shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/queues.hpp"
#include "common/rng.hpp"
#include "common/small_vec.hpp"
#include "db/database.hpp"
#include "sched/engine.hpp"
#include "sched/lock_table.hpp"
#include "workloads/microbench.hpp"

namespace prog {
namespace {

using sched::LockTable;
using sched::TxIdx;

constexpr TableId kT = 7;

/// Reference model for the randomized equivalence stress: one FIFO deque per
/// key, the grant rules written out literally (head always granted; with
/// shared reads, a maximal reader prefix). Single-threaded, allocation-happy,
/// obviously correct — the spec the arena table is checked against.
class ReferenceLockTable {
 public:
  explicit ReferenceLockTable(bool shared_reads)
      : shared_reads_(shared_reads) {}

  bool enqueue(TxIdx tx, TKey key, bool write, TxIdx* pred_out = nullptr) {
    std::deque<Entry>& q = queues_[key];
    bool granted = false;
    if (q.empty()) {
      granted = true;
    } else if (shared_reads_ && !write) {
      // Granted iff every entry ahead is a granted reader.
      granted = std::all_of(q.begin(), q.end(), [](const Entry& e) {
        return !e.write && e.granted;
      });
    }
    if (pred_out != nullptr && !granted) *pred_out = q.back().tx;
    q.push_back({tx, write, granted});
    return granted;
  }

  void release(TxIdx tx, TKey key, std::vector<TxIdx>& granted) {
    auto it = queues_.find(key);
    ASSERT_NE(it, queues_.end()) << "release on unknown key";
    std::deque<Entry>& q = it->second;
    auto e = std::find_if(q.begin(), q.end(),
                          [&](const Entry& en) { return en.tx == tx; });
    ASSERT_NE(e, q.end()) << "release of an entry that was never enqueued";
    ASSERT_TRUE(e->granted) << "release of an ungranted lock entry";
    q.erase(e);
    if (q.empty()) {
      queues_.erase(it);
      return;
    }
    if (!q.front().granted) {
      q.front().granted = true;
      granted.push_back(q.front().tx);
    }
    if (!shared_reads_ || q.front().write) return;
    for (std::size_t i = 1; i < q.size(); ++i) {
      if (q[i].write) break;
      if (!q[i].granted) {
        q[i].granted = true;
        granted.push_back(q[i].tx);
      }
    }
  }

  std::size_t entry_count() const {
    std::size_t n = 0;
    for (const auto& [key, q] : queues_) n += q.size();
    return n;
  }
  bool empty() const { return queues_.empty(); }

 private:
  struct Entry {
    TxIdx tx;
    bool write;
    bool granted;
  };
  std::map<TKey, std::deque<Entry>> queues_;
  bool shared_reads_;
};

// ---------------------------------------------------------------------------
// SmallVec
// ---------------------------------------------------------------------------

TEST(SmallVecTest, InlineUntilCapacityThenSpills) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.is_inline());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, ClearKeepsSpillBuffer) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  const int* data = v.data();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  for (int i = 0; i < 100; ++i) v.push_back(-i);
  EXPECT_EQ(v.data(), data);  // arena reuse: no reallocation
  EXPECT_EQ(v[99], -99);
}

TEST(SmallVecTest, SortUniqueEraseIdiom) {
  SmallVec<int, 8> v{3, 1, 3, 2, 1, 2, 3};
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(SmallVecTest, MoveStealsHeapAndLeavesEmpty) {
  SmallVec<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  const int* heap = a.data();
  SmallVec<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), heap);  // ownership transferred, no copy
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.is_inline());
  a.push_back(7);  // moved-from object is reusable
  EXPECT_EQ(a[0], 7);
}

TEST(SmallVecTest, ComparesAgainstVector) {
  SmallVec<int, 4> v{1, 2, 3};
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(v == (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Epoch-arena lock table: structure
// ---------------------------------------------------------------------------

TEST(ArenaLockTableTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(LockTable(LockTable::Options{false, 13, 16}).shard_count(), 16u);
  EXPECT_EQ(LockTable(LockTable::Options{false, 64, 16}).shard_count(), 64u);
  EXPECT_EQ(LockTable(LockTable::Options{false, 1, 16}).shard_count(), 1u);
  EXPECT_EQ(LockTable(LockTable::Options{false, 0, 16}).shard_count(), 1u);
}

TEST(ArenaLockTableTest, EntryCountIsMaintainedNotScanned) {
  LockTable lt(LockTable::Options{false, 4, 8});
  std::vector<TxIdx> granted;
  for (TxIdx tx = 0; tx < 32; ++tx) {
    lt.enqueue(tx, {kT, static_cast<Key>(tx % 8)}, true);
  }
  EXPECT_EQ(lt.entry_count(), 32u);
  EXPECT_FALSE(lt.empty());
  // None of the steady-state paths walked a shard.
  EXPECT_EQ(lt.shard_scans(), 0u);
  // The debug walk agrees with the counter — and is the only scanner.
  EXPECT_EQ(lt.verify_drained(), 32u);
  EXPECT_EQ(lt.shard_scans(), 1u);
  lt.clear();
  EXPECT_TRUE(lt.empty());
}

TEST(ArenaLockTableTest, BeginBatchRetiresEverythingAndReuses) {
  LockTable lt(LockTable::Options{false, 2, 8});
  std::vector<TxIdx> granted;
  for (int batch = 0; batch < 50; ++batch) {
    for (TxIdx tx = 0; tx < 20; ++tx) {
      lt.enqueue(tx, {kT, static_cast<Key>(tx % 5)}, true);
    }
    EXPECT_EQ(lt.entry_count(), 20u);
    // Drain in FIFO order per key.
    for (TxIdx tx = 0; tx < 20; ++tx) {
      granted.clear();
      lt.release(tx, {kT, static_cast<Key>(tx % 5)}, granted);
    }
    EXPECT_TRUE(lt.empty());
    lt.begin_batch();
  }
  // Steady state: the flat tables and arenas reached their working size in
  // the first batch or two and were reused thereafter.
  const LockTable::Stats st = lt.stats();
  EXPECT_LE(st.rehashes, 4u);
  EXPECT_LE(st.arena_grows, 4u);
  EXPECT_EQ(st.shard_scans, 0u);
}

TEST(ArenaLockTableTest, BeginBatchOnNonDrainedTableThrows) {
  LockTable lt(LockTable::Options{false, 2, 8});
  lt.enqueue(1, {kT, 1}, true);
  EXPECT_THROW(lt.begin_batch(), InvariantError);
}

TEST(ArenaLockTableTest, RehashPreservesQueuesAndFifoOrder) {
  // One shard with a tiny initial table: inserting many distinct keys forces
  // several rehashes while queues are populated.
  LockTable lt(LockTable::Options{false, 1, 2});
  constexpr int kKeys = 300;
  for (TxIdx tx = 0; tx < 2; ++tx) {
    for (int k = 0; k < kKeys; ++k) {
      const bool granted = lt.enqueue(tx, {kT, static_cast<Key>(k)}, true);
      EXPECT_EQ(granted, tx == 0);
    }
  }
  EXPECT_GT(lt.stats().rehashes, 0u);
  EXPECT_EQ(lt.entry_count(), 2u * kKeys);
  std::vector<TxIdx> granted;
  for (int k = 0; k < kKeys; ++k) {
    granted.clear();
    lt.release(0, {kT, static_cast<Key>(k)}, granted);
    ASSERT_EQ(granted, std::vector<TxIdx>{1}) << "key " << k;
  }
  for (int k = 0; k < kKeys; ++k) {
    granted.clear();
    lt.release(1, {kT, static_cast<Key>(k)}, granted);
    EXPECT_TRUE(granted.empty());
  }
  EXPECT_TRUE(lt.empty());
  EXPECT_EQ(lt.verify_drained(), 0u);
}

// ---------------------------------------------------------------------------
// Grant semantics (shared-read edge cases)
// ---------------------------------------------------------------------------

TEST(GrantSemanticsTest, WriterReleaseCascadesWholeReaderPrefix) {
  LockTable lt(LockTable::Options{.shared_reads = true, .shards = 4});
  EXPECT_TRUE(lt.enqueue(1, {kT, 9}, true));    // writer holds
  EXPECT_FALSE(lt.enqueue(2, {kT, 9}, false));  // readers pile up behind
  EXPECT_FALSE(lt.enqueue(3, {kT, 9}, false));
  EXPECT_FALSE(lt.enqueue(4, {kT, 9}, false));
  EXPECT_FALSE(lt.enqueue(5, {kT, 9}, true));  // next writer
  std::vector<TxIdx> granted;
  lt.release(1, {kT, 9}, granted);
  // The whole reader prefix is granted at once; the writer still waits.
  EXPECT_EQ(granted, (std::vector<TxIdx>{2, 3, 4}));
}

TEST(GrantSemanticsTest, ReleaseFromMiddleOfGrantedPrefix) {
  LockTable lt(LockTable::Options{.shared_reads = true, .shards = 4});
  EXPECT_TRUE(lt.enqueue(1, {kT, 9}, false));
  EXPECT_TRUE(lt.enqueue(2, {kT, 9}, false));
  EXPECT_TRUE(lt.enqueue(3, {kT, 9}, false));
  EXPECT_FALSE(lt.enqueue(4, {kT, 9}, true));
  std::vector<TxIdx> granted;
  lt.release(2, {kT, 9}, granted);  // middle of the granted prefix
  EXPECT_TRUE(granted.empty());
  lt.release(1, {kT, 9}, granted);
  EXPECT_TRUE(granted.empty());  // reader 3 still ahead of the writer
  lt.release(3, {kT, 9}, granted);
  EXPECT_EQ(granted, std::vector<TxIdx>{4});
}

TEST(GrantSemanticsTest, ReaderBehindWriterIsNotGranted) {
  LockTable lt(LockTable::Options{.shared_reads = true, .shards = 4});
  EXPECT_TRUE(lt.enqueue(1, {kT, 9}, false));
  EXPECT_TRUE(lt.enqueue(2, {kT, 9}, false));
  EXPECT_FALSE(lt.enqueue(3, {kT, 9}, true));
  // A late reader may not jump the queued writer (no reader starvation of
  // writers / no reordering): it must wait even though readers hold the key.
  EXPECT_FALSE(lt.enqueue(4, {kT, 9}, false));
  std::vector<TxIdx> granted;
  lt.release(1, {kT, 9}, granted);
  lt.release(2, {kT, 9}, granted);
  EXPECT_EQ(granted, std::vector<TxIdx>{3});
  granted.clear();
  lt.release(3, {kT, 9}, granted);
  EXPECT_EQ(granted, std::vector<TxIdx>{4});
}

/// Randomized single-threaded equivalence stress against the reference model
/// above. Every enqueue must return the same grant decision, every release
/// must grant the same transactions in the same order, and the entry counts
/// must track exactly.
void run_equivalence_stress(bool shared_reads, std::uint64_t seed) {
  LockTable lt(LockTable::Options{shared_reads, 8, 4});
  ReferenceLockTable ref(shared_reads);
  Rng rng(seed);

  struct Held {
    TxIdx tx;
    TKey key;
  };
  std::vector<Held> granted_entries;  // entries we may legally release
  std::vector<Held> waiting;          // entries not yet granted
  TxIdx next_tx = 0;

  for (int op = 0; op < 4000; ++op) {
    const bool do_enqueue =
        waiting.size() + granted_entries.size() < 64 &&
        (granted_entries.empty() || rng.uniform(0, 99) < 55);
    if (do_enqueue) {
      const TxIdx tx = next_tx++;
      const TKey key{kT, static_cast<Key>(rng.uniform(0, 15))};
      const bool write = rng.uniform(0, 99) < 40;
      TxIdx pred_a = tx, pred_b = tx;
      const bool ga = lt.enqueue(tx, key, write, &pred_a);
      const bool gb = ref.enqueue(tx, key, write, &pred_b);
      ASSERT_EQ(ga, gb) << "op " << op;
      if (!ga) {
        ASSERT_EQ(pred_a, pred_b) << "op " << op;
      }
      (ga ? granted_entries : waiting).push_back({tx, key});
    } else {
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform(0, granted_entries.size() - 1));
      const Held h = granted_entries[i];
      granted_entries.erase(granted_entries.begin() +
                            static_cast<std::ptrdiff_t>(i));
      std::vector<TxIdx> ga, gb;
      lt.release(h.tx, h.key, ga);
      ref.release(h.tx, h.key, gb);
      ASSERT_EQ(ga, gb) << "op " << op;
      // Promote newly granted entries.
      for (TxIdx g : ga) {
        auto it = std::find_if(waiting.begin(), waiting.end(), [&](Held w) {
          return w.tx == g && w.key == h.key;
        });
        ASSERT_NE(it, waiting.end()) << "op " << op;
        granted_entries.push_back(*it);
        waiting.erase(it);
      }
    }
    ASSERT_EQ(lt.entry_count(), ref.entry_count()) << "op " << op;
  }
  // Drain: keep releasing granted entries until both tables are empty.
  while (!granted_entries.empty()) {
    const Held h = granted_entries.back();
    granted_entries.pop_back();
    std::vector<TxIdx> ga, gb;
    lt.release(h.tx, h.key, ga);
    ref.release(h.tx, h.key, gb);
    ASSERT_EQ(ga, gb);
    for (TxIdx g : ga) {
      auto it = std::find_if(waiting.begin(), waiting.end(), [&](Held w) {
        return w.tx == g && w.key == h.key;
      });
      ASSERT_NE(it, waiting.end());
      granted_entries.push_back(*it);
      waiting.erase(it);
    }
  }
  EXPECT_TRUE(waiting.empty());
  EXPECT_TRUE(lt.empty());
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(lt.verify_drained(), 0u);
}

TEST(GrantSemanticsTest, RandomizedEquivalenceExclusive) {
  for (std::uint64_t seed : {1u, 22u, 333u}) {
    run_equivalence_stress(/*shared_reads=*/false, seed);
  }
}

TEST(GrantSemanticsTest, RandomizedEquivalenceSharedReads) {
  for (std::uint64_t seed : {7u, 88u, 999u}) {
    run_equivalence_stress(/*shared_reads=*/true, seed);
  }
}

/// Multi-threaded protocol stress (exercised under ASan/TSan in CI): worker
/// threads claim transactions, enqueue their key-sets, execute those that
/// are fully granted, and release — the engine's exact usage pattern.
TEST(GrantSemanticsTest, ConcurrentEnqueueReleaseStress) {
  constexpr unsigned kThreads = 4;
  constexpr TxIdx kTxns = 400;
  constexpr int kKeysPerTx = 4;

  LockTable lt(LockTable::Options{false, 8, 8});
  // Pre-assigned sorted unique key-sets (as predictions are).
  std::vector<std::vector<TKey>> keys(kTxns);
  Rng rng(42);
  for (auto& ks : keys) {
    for (int k = 0; k < kKeysPerTx; ++k) {
      ks.push_back({kT, static_cast<Key>(rng.uniform(0, 31))});
    }
    std::sort(ks.begin(), ks.end());
    ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  }
  std::vector<std::atomic<int>> remaining(kTxns);
  MpmcQueue<TxIdx> ready;
  TicketDispenser enqueue_tickets(kTxns);
  std::atomic<std::uint64_t> done{0};
  std::atomic<int> executed[kTxns] = {};

  auto work = [&] {
    // Enqueue phase share.
    while (auto t = enqueue_tickets.claim()) {
      const TxIdx tx = static_cast<TxIdx>(*t);
      remaining[tx].store(static_cast<int>(keys[tx].size()),
                          std::memory_order_relaxed);
      int granted_now = 0;
      for (TKey k : keys[tx]) {
        if (lt.enqueue(tx, k, true)) ++granted_now;
      }
      if (granted_now > 0 &&
          remaining[tx].fetch_sub(granted_now, std::memory_order_acq_rel) ==
              granted_now) {
        ready.push(tx);
      }
    }
    // Execute/release until all transactions completed.
    while (done.load(std::memory_order_acquire) < kTxns) {
      auto t = ready.try_pop();
      if (!t) {
        std::this_thread::yield();
        continue;
      }
      const TxIdx tx = *t;
      executed[tx].fetch_add(1, std::memory_order_relaxed);
      std::vector<TxIdx> granted;
      for (TKey k : keys[tx]) lt.release(tx, k, granted);
      for (TxIdx g : granted) {
        if (remaining[g].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ready.push(g);
        }
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  };
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kThreads; ++i) threads.emplace_back(work);
  for (auto& th : threads) th.join();

  for (TxIdx tx = 0; tx < kTxns; ++tx) {
    EXPECT_EQ(executed[tx].load(), 1) << "tx " << tx;
  }
  EXPECT_TRUE(lt.empty());
  EXPECT_EQ(lt.verify_drained(), 0u);
}

// ---------------------------------------------------------------------------
// Work-stealing deque
// ---------------------------------------------------------------------------

TEST(WorkStealingDequeTest, OwnerPopsLifo) {
  WorkStealingDeque<int> d;
  for (int i = 0; i < 5; ++i) d.push(i);
  for (int i = 4; i >= 0; --i) {
    auto v = d.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.pop().has_value());
}

TEST(WorkStealingDequeTest, ThiefStealsFifo) {
  WorkStealingDeque<int> d;
  for (int i = 0; i < 5; ++i) d.push(i);
  for (int i = 0; i < 5; ++i) {
    auto v = d.steal();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(d.steal().has_value());
}

TEST(WorkStealingDequeTest, GrowthPreservesContents) {
  WorkStealingDeque<int> d(8);
  for (int i = 0; i < 1000; ++i) d.push(i);
  EXPECT_EQ(d.size_approx(), 1000u);
  for (int i = 999; i >= 0; --i) {
    auto v = d.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(WorkStealingDequeTest, ClearAfterQuiesceResets) {
  WorkStealingDeque<int> d(8);
  for (int i = 0; i < 100; ++i) d.push(i);  // forces growth + retirement
  d.clear();
  EXPECT_TRUE(d.empty_approx());
  d.push(7);
  EXPECT_EQ(d.pop().value_or(-1), 7);
}

TEST(WorkStealingDequeTest, ConcurrentStealDeliversExactlyOnce) {
  constexpr int kItems = 20000;
  constexpr unsigned kThieves = 3;
  WorkStealingDeque<int> d(8);  // small: exercises growth under contention
  std::vector<std::atomic<int>> seen(kItems);
  std::atomic<bool> owner_done{false};
  std::atomic<int> consumed{0};

  auto thief = [&] {
    while (consumed.load(std::memory_order_acquire) < kItems) {
      if (auto v = d.steal()) {
        seen[static_cast<std::size_t>(*v)].fetch_add(1);
        consumed.fetch_add(1, std::memory_order_acq_rel);
      } else if (owner_done.load(std::memory_order_acquire) &&
                 d.empty_approx() &&
                 consumed.load(std::memory_order_acquire) >= kItems) {
        break;
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::vector<std::thread> thieves;
  for (unsigned i = 0; i < kThieves; ++i) thieves.emplace_back(thief);

  // Owner: interleaved pushes and pops.
  Rng rng(7);
  for (int i = 0; i < kItems; ++i) {
    d.push(i);
    if (rng.uniform(0, 3) == 0) {
      if (auto v = d.pop()) {
        seen[static_cast<std::size_t>(*v)].fetch_add(1);
        consumed.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  }
  owner_done.store(true, std::memory_order_release);
  while (consumed.load(std::memory_order_acquire) < kItems) {
    if (auto v = d.pop()) {
      seen[static_cast<std::size_t>(*v)].fetch_add(1);
      consumed.fetch_add(1, std::memory_order_acq_rel);
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& th : thieves) th.join();

  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

// ---------------------------------------------------------------------------
// Engine-level guarantees
// ---------------------------------------------------------------------------

/// Runs the high-contention catalog mix and returns the database handle.
std::unique_ptr<db::Database> run_catalog(sched::EngineConfig cfg,
                                          int batches) {
  cfg.telemetry = true;
  auto db = std::make_unique<db::Database>(cfg);
  workloads::micro::CatalogOptions wopts;
  wopts.catalog_keys = 100;
  wopts.accounts = 500;
  wopts.zipf_theta = 1.1;  // hot keys: long lock queues, real steals
  workloads::micro::CatalogWorkload wl(*db, wopts);
  Rng rng(1234);
  for (int i = 0; i < batches; ++i) {
    db->execute(wl.batch(/*n=*/120, /*reprice_count=*/30, rng));
  }
  return db;
}

TEST(HotPathEngineTest, DeterministicAcrossWorkerCounts) {
  sched::EngineConfig base;
  base.workers = 1;
  auto ref = run_catalog(base, 6);
  const std::string ref_metrics = ref->telemetry()->serialize_deterministic();
  const std::uint64_t ref_hash = ref->state_hash();
  ASSERT_FALSE(ref_metrics.empty());
  for (unsigned workers : {2u, 8u}) {
    sched::EngineConfig cfg;
    cfg.workers = workers;
    auto db = run_catalog(cfg, 6);
    // Byte-identical deterministic telemetry and identical final state: the
    // work-stealing deques may interleave execution differently per run, but
    // the lock table alone decides conflicts.
    EXPECT_EQ(db->telemetry()->serialize_deterministic(), ref_metrics)
        << workers << " workers";
    EXPECT_EQ(db->state_hash(), ref_hash) << workers << " workers";
  }
}

TEST(HotPathEngineTest, ParallelEnqueuePreservesResults) {
  // The partitioned enqueue must be a pure performance switch: identical
  // state, deterministic telemetry, and round structure either way.
  sched::EngineConfig serial;
  serial.workers = 4;
  sched::EngineConfig parallel = serial;
  parallel.parallel_enqueue = true;
  auto a = run_catalog(serial, 5);
  auto b = run_catalog(parallel, 5);
  EXPECT_EQ(a->state_hash(), b->state_hash());
  EXPECT_EQ(a->telemetry()->serialize_deterministic(),
            b->telemetry()->serialize_deterministic());
  EXPECT_EQ(a->engine_stats().committed, b->engine_stats().committed);
  EXPECT_EQ(a->engine_stats().rounds, b->engine_stats().rounds);
}

TEST(HotPathEngineTest, BankRotationRandomizedStress) {
  // Double-buffered lock-table banks (DESIGN.md §14): at pipeline_depth > 0
  // consecutive batches alternate between two epoch-arena banks so batch
  // N+1's prepare can populate one bank while batch N's execution drains
  // the other. This stress drives randomly shaped hot-catalog batches
  // through a pipelined database — randomly choosing the staged
  // prepare/execute path or the direct execute path per batch, both of
  // which rotate banks — and checks after every batch that the run stays
  // byte-identical to a serial depth-0 database and that the just-retired
  // bank really drained (a leaked entry would poison the batch after next,
  // not the next one, which is exactly what a fixed-schedule test misses).
  sched::EngineConfig serial_cfg;
  serial_cfg.workers = 4;
  serial_cfg.telemetry = true;
  sched::EngineConfig piped_cfg = serial_cfg;
  piped_cfg.pipeline_depth = 2;

  workloads::micro::CatalogOptions wopts;
  wopts.catalog_keys = 100;
  wopts.accounts = 500;
  wopts.zipf_theta = 1.1;

  for (std::uint64_t seed : {5u, 66u, 777u}) {
    db::Database serial(serial_cfg);
    workloads::micro::CatalogWorkload serial_wl(serial, wopts);
    db::Database piped(piped_cfg);
    workloads::micro::CatalogWorkload piped_wl(piped, wopts);
    ASSERT_NE(piped.engine().alt_lock_table(), nullptr);
    EXPECT_EQ(serial.engine().alt_lock_table(), nullptr);

    Rng shape(seed);          // batch shapes + path choice
    Rng rng_a(seed ^ 0x9e37); // transaction stream, one per database
    Rng rng_b(seed ^ 0x9e37);
    for (int i = 0; i < 24; ++i) {
      const std::size_t n = static_cast<std::size_t>(shape.uniform(1, 160));
      const std::size_t reprices =
          static_cast<std::size_t>(shape.uniform(0, static_cast<int>(n) / 3));
      const bool staged = shape.uniform(0, 1) == 1;
      const auto sr = serial.execute(serial_wl.batch(n, reprices, rng_a));
      sched::BatchResult pr;
      if (staged) {
        piped.prepare_batch(piped_wl.batch(n, reprices, rng_b));
        pr = piped.execute_prepared();
      } else {
        pr = piped.execute(piped_wl.batch(n, reprices, rng_b));
      }
      ASSERT_EQ(sr.committed, pr.committed) << "seed " << seed << " batch " << i;
      ASSERT_EQ(sr.rounds, pr.rounds) << "seed " << seed << " batch " << i;
      ASSERT_EQ(serial.state_hash(), piped.state_hash())
          << "seed " << seed << " batch " << i;
      // Both banks fully drained after every rotation.
      EXPECT_EQ(piped.engine().lock_table().verify_drained(), 0u)
          << "seed " << seed << " batch " << i;
      EXPECT_EQ(piped.engine().alt_lock_table()->verify_drained(), 0u)
          << "seed " << seed << " batch " << i;
    }
    // Both banks actually rotated into service and did real work.
    const sched::LockTable::Stats primary = piped.engine().lock_table().stats();
    const sched::LockTable::Stats alt = piped.engine().alt_lock_table()->stats();
    EXPECT_GT(primary.arena_grows + primary.rehashes, 0u) << "seed " << seed;
    EXPECT_GT(alt.arena_grows + alt.rehashes, 0u) << "seed " << seed;
    EXPECT_EQ(serial.telemetry()->serialize_deterministic(),
              piped.telemetry()->serialize_deterministic())
        << "seed " << seed;
  }
}

TEST(HotPathEngineTest, TelemetryGaugeNeverScansShards) {
  // Regression (DESIGN.md §10): the lock-depth gauge reads the maintained
  // O(1) counter. Before the overhaul, every telemetry sample walked every
  // shard under its lock; the arena table's scan counter must stay at zero
  // across fully instrumented batches.
  sched::EngineConfig cfg;
  cfg.workers = 4;
  auto db = run_catalog(cfg, 6);  // telemetry on; DTs, MF rounds, the works
  EXPECT_EQ(db->engine().lock_table().shard_scans(), 0u);
  EXPECT_GT(db->engine().lock_table().stats().arena_grows +
                db->engine().lock_table().stats().rehashes,
            0u);  // the table did real work
}

}  // namespace
}  // namespace prog
