// Tests for the flat-bytecode compiler and VM (DESIGN.md §15):
//  - compiler shape: key fusion, constant folding, disassembly, attachment
//    at ProcBuilder::build / Profiler::profile;
//  - directed semantic edges where the tree-walker is subtle: wrap-around
//    arithmetic, total division (divisor 0, INT64_MIN / -1), short-circuit
//    && / ||, arity and step-limit error strings;
//  - a seeded differential fuzzer: 1000 randomly generated procedures run
//    against the tree-walking interpreter (byte-identical ExecResult) and,
//    via symbolic execution, against the PSC-tree prediction walker
//    (identical key-sets, write-sets and pivot observations);
//  - engine-level equivalence: tree_walk_ablation is a pure performance
//    switch across workloads x worker counts x pipeline depths (identical
//    state hashes and deterministic telemetry);
//  - the IT prediction memo: hits occur, outcomes stay byte-identical, the
//    it_memo_check determinism assertion stays quiet;
//  - a crash-recovery fuzz arm proving the durable path converges to the
//    same witness hash with the VM and with the tree-walk oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "consensus/recovery_fuzz.hpp"
#include "db/database.hpp"
#include "lang/builder.hpp"
#include "lang/bytecode/bytecode.hpp"
#include "lang/bytecode/pred_program.hpp"
#include "lang/interp.hpp"
#include "sched/engine.hpp"
#include "store/store.hpp"
#include "sym/symexec.hpp"
#include "workloads/microbench.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

namespace prog {
namespace {

constexpr TableId kAcct = 1;
constexpr FieldId kBal = 0;

lang::Proc make_transfer() {
  lang::ProcBuilder b("transfer");
  auto from = b.param("from", 0, 100);
  auto to = b.param("to", 0, 100);
  auto amount = b.param("amount", 1, 50);
  auto src = b.get(kAcct, from);
  auto dst = b.get(kAcct, to);
  b.put(kAcct, from, {{kBal, src.field(kBal) - amount}});
  b.put(kAcct, to, {{kBal, dst.field(kBal) + amount}});
  return std::move(b).build();
}

void make_accounts(store::VersionedStore& s, Value n, Value balance) {
  for (Value i = 0; i < n; ++i) {
    s.put({kAcct, static_cast<Key>(i)}, store::Row{{kBal, balance}}, 0);
  }
}

// ---------------------------------------------------------------------------
// Compiler shape
// ---------------------------------------------------------------------------

TEST(BytecodeCompilerTest, BuildAttachesCompiledCode) {
  const lang::Proc p = make_transfer();
  ASSERT_NE(p.code, nullptr);
  EXPECT_EQ(p.code->name, "transfer");
  EXPECT_EQ(p.code->num_params, 3u);
  EXPECT_FALSE(p.code->code.empty());
  EXPECT_EQ(p.code->code.back().op, bytecode::Op::kHalt);
}

TEST(BytecodeCompilerTest, ParamAndConstantKeysFuse) {
  lang::ProcBuilder b("fused");
  auto k = b.param("k", 0, 100);
  auto row = b.get(kAcct, k);                       // param key -> kGetP
  b.get(kAcct, b.lit(2) + b.lit(3));                // folds to 5 -> kGetC
  b.put(kAcct, k + 1, {{kBal, row.field(kBal)}});   // computed key -> kPutR
  const lang::Proc p = std::move(b).build();
  ASSERT_NE(p.code, nullptr);
  const std::string listing = bytecode::disassemble(*p.code);
  EXPECT_NE(listing.find("get.p"), std::string::npos) << listing;
  EXPECT_NE(listing.find("get.c"), std::string::npos) << listing;
  EXPECT_NE(listing.find("put.r"), std::string::npos) << listing;
  // The folded key constant lives in the pool; no instruction computes it.
  EXPECT_TRUE(std::any_of(p.code->pool.begin(), p.code->pool.end(),
                          [](Value v) { return v == 5; }))
      << listing;
}

TEST(BytecodeCompilerTest, VariableKeysFuseToHomeRegister) {
  lang::ProcBuilder b("varkey");
  auto k = b.param("k", 0, 100);
  auto v = b.let("v", k * 2);
  auto row = b.get(kAcct, v);  // variable key -> kGetR on the home register
  b.put(kAcct, v, {{kBal, row.field(kBal) + 1}});
  const lang::Proc p = std::move(b).build();
  ASSERT_NE(p.code, nullptr);
  // No kMov should be needed to stage the variable into a temp for the key.
  const std::string listing = bytecode::disassemble(*p.code);
  EXPECT_NE(listing.find("get.r"), std::string::npos) << listing;
  EXPECT_NE(listing.find("put.r"), std::string::npos) << listing;
}

TEST(BytecodeCompilerTest, PredictionProgramAttachesAtProfileTime) {
  lang::ProcBuilder b("chase");
  auto k = b.param("k", 0, 30);
  auto head = b.get(kAcct, k);
  auto next = b.get(kAcct, head.field(kBal));  // pivot-dependent key: DT
  b.put(kAcct, next.field(kBal), {{kBal, k}});
  const lang::Proc p = std::move(b).build();
  auto profile = sym::Profiler::profile(p);
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->klass(), sym::TxClass::kDependent);
  ASSERT_NE(profile->pred_code(), nullptr);
  const std::string listing =
      bytecode::disassemble_prediction(*profile->pred_code());
  EXPECT_NE(listing.find("pkey"), std::string::npos) << listing;
  EXPECT_NE(listing.find("pwr"), std::string::npos) << listing;
}

// ---------------------------------------------------------------------------
// Directed semantic edges
// ---------------------------------------------------------------------------

/// Runs `proc` under both engines and returns (vm, tree) outcomes; an
/// outcome is the ExecResult or the exception message, whichever happened.
struct Outcome {
  bool threw = false;
  std::string error;
  lang::ExecResult result;
};

Outcome run_one(const lang::Interp& interp, const lang::Proc& proc,
                const lang::TxInput& input, const store::ReadView& view) {
  Outcome o;
  try {
    o.result = interp.run(proc, input, view);
  } catch (const std::exception& e) {
    o.threw = true;
    o.error = e.what();
  }
  return o;
}

void expect_identical(const Outcome& vm, const Outcome& tree,
                      const std::string& context) {
  ASSERT_EQ(vm.threw, tree.threw)
      << context << ": vm=" << vm.error << " tree=" << tree.error;
  if (vm.threw) {
    EXPECT_EQ(vm.error, tree.error) << context;
    return;
  }
  const lang::ExecResult& a = vm.result;
  const lang::ExecResult& b = tree.result;
  EXPECT_EQ(a.committed, b.committed) << context;
  EXPECT_EQ(a.emitted, b.emitted) << context;
  EXPECT_EQ(a.reads, b.reads) << context;
  EXPECT_EQ(a.writes, b.writes) << context;
  ASSERT_EQ(a.ops.size(), b.ops.size()) << context;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].key, b.ops[i].key) << context << " op " << i;
    EXPECT_EQ(a.ops[i].row.has_value(), b.ops[i].row.has_value())
        << context << " op " << i;
    if (a.ops[i].row.has_value() && b.ops[i].row.has_value()) {
      EXPECT_EQ(*a.ops[i].row, *b.ops[i].row) << context << " op " << i;
    }
  }
}

class DirectedSemanticsTest : public ::testing::Test {
 protected:
  void run_both(const lang::Proc& proc, const lang::TxInput& input) {
    store::VersionedStore s;
    make_accounts(s, 8, 100);
    store::SnapshotView view(s, 0);
    const Outcome vm = run_one(lang::Interp(), proc, input, view);
    const Outcome tree = run_one(
        lang::Interp(lang::Interp::Options{.tree_walk = true}), proc, input,
        view);
    expect_identical(vm, tree, proc.name);
  }
};

TEST_F(DirectedSemanticsTest, DivisionEdgeCases) {
  lang::ProcBuilder b("div_edges");
  auto x = b.param("x", std::numeric_limits<Value>::min(),
                   std::numeric_limits<Value>::max());
  auto y = b.param("y", std::numeric_limits<Value>::min(),
                   std::numeric_limits<Value>::max());
  b.emit(x / y);
  b.emit(x % y);
  const lang::Proc p = std::move(b).build();
  ASSERT_NE(p.code, nullptr);
  // Note INT64_MIN / -1 is absent: the tree-walker only guards divisor == 0,
  // so that pair traps natively under BOTH engines (the compiler's constant
  // folder skips it for the same reason). The VM matches the oracle exactly,
  // including that edge — which a unit test cannot observe.
  for (auto [xv, yv] : std::vector<std::pair<Value, Value>>{
           {5, 0},  // total division: -> 0
           {-7, 2},
           {std::numeric_limits<Value>::min(), 0}}) {
    lang::TxInput in;
    in.add(xv).add(yv);
    run_both(p, in);
  }
}

TEST_F(DirectedSemanticsTest, WrapAroundArithmetic) {
  lang::ProcBuilder b("wrap");
  auto x = b.param("x", std::numeric_limits<Value>::min(),
                   std::numeric_limits<Value>::max());
  b.emit(x + 1);
  b.emit(x * 3);
  b.emit(b.lit(0) - x);
  const lang::Proc p = std::move(b).build();
  for (Value v : {std::numeric_limits<Value>::max(),
                  std::numeric_limits<Value>::min(), Value{0}, Value{-1}}) {
    lang::TxInput in;
    in.add(v);
    run_both(p, in);
  }
}

TEST_F(DirectedSemanticsTest, ShortCircuitSkipsRightOperand) {
  // (y == 0) || (x / y > 1): the tree-walker short-circuits, so y == 0 must
  // never evaluate the division. The VM's jump scheme must agree (the
  // division is total either way, but the emitted truth value must match).
  lang::ProcBuilder b("shortcircuit");
  auto x = b.param("x", 0, 1000);
  auto y = b.param("y", 0, 1000);
  b.emit((y == b.lit(0)) || (x / y > 1));
  b.emit((y != b.lit(0)) && (x / y > 1));
  const lang::Proc p = std::move(b).build();
  for (auto [xv, yv] :
       std::vector<std::pair<Value, Value>>{{10, 0}, {10, 3}, {2, 3}}) {
    lang::TxInput in;
    in.add(xv).add(yv);
    run_both(p, in);
  }
}

TEST(BytecodeVmTest, ArityMismatchMatchesTreeWalker) {
  const lang::Proc p = make_transfer();
  ASSERT_NE(p.code, nullptr);
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  lang::TxInput in;
  in.add(1);  // 3 params expected
  const Outcome vm = run_one(lang::Interp(), p, in, view);
  const Outcome tree = run_one(
      lang::Interp(lang::Interp::Options{.tree_walk = true}), p, in, view);
  ASSERT_TRUE(vm.threw);
  ASSERT_TRUE(tree.threw);
  EXPECT_EQ(vm.error, tree.error);
  EXPECT_EQ(vm.error, "argument count mismatch for procedure transfer");
}

TEST(BytecodeVmTest, StepLimitMatchesTreeWalker) {
  lang::ProcBuilder b("spin");
  auto n = b.param("n", 0, 1 << 20);
  auto acc = b.let("acc", b.lit(0));
  b.for_(b.lit(0), n, 1 << 20,
         [&](lang::ProcBuilder& body, lang::Val i) { body.assign(acc, acc + i); });
  b.emit(acc);
  const lang::Proc p = std::move(b).build();
  ASSERT_NE(p.code, nullptr);
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  lang::TxInput in;
  in.add(1 << 18);
  const lang::Interp::Options tight{.max_steps = 64};
  const Outcome vm = run_one(lang::Interp(tight), p, in, view);
  const Outcome tree = run_one(
      lang::Interp(lang::Interp::Options{.max_steps = 64, .tree_walk = true}),
      p, in, view);
  ASSERT_TRUE(vm.threw);
  ASSERT_TRUE(tree.threw);
  EXPECT_EQ(vm.error, tree.error);
  EXPECT_EQ(vm.error, "Interp: step limit exceeded (runaway loop?)");
}

TEST(BytecodeVmTest, BorrowedReadsMatchOwnedReads) {
  // The borrowed-pointer read path (ReadView::get_raw) must be
  // observationally identical to the legacy shared_ptr copy per GET.
  const lang::Proc p = make_transfer();
  ASSERT_NE(p.code, nullptr);
  store::VersionedStore s;
  make_accounts(s, 8, 100);
  store::SnapshotView view(s, 0);
  lang::TxInput in;
  in.add(0).add(1).add(25);
  lang::ExecResult borrowed, owned;
  bytecode::run(*p.code, in, view, 1 << 22, borrowed, /*borrow_rows=*/true);
  bytecode::run(*p.code, in, view, 1 << 22, owned, /*borrow_rows=*/false);
  EXPECT_EQ(borrowed.committed, owned.committed);
  EXPECT_EQ(borrowed.emitted, owned.emitted);
  EXPECT_EQ(borrowed.reads, owned.reads);
  EXPECT_EQ(borrowed.writes, owned.writes);
  ASSERT_EQ(borrowed.ops.size(), owned.ops.size());
}

// ---------------------------------------------------------------------------
// Differential fuzzer: random procedures, VM vs tree, prediction VM vs PSC
// ---------------------------------------------------------------------------

/// Random procedure generator. Conservatively scoped: nested blocks only
/// reference values declared in enclosing scopes, and declarations made
/// inside a block are popped on exit, so every generated procedure is
/// well-formed under both engines.
class FuzzGen {
 public:
  FuzzGen(lang::ProcBuilder& b, Rng& rng) : b_(b), rng_(rng) {}

  void generate() {
    const int params = static_cast<int>(rng_.uniform(1, 3));
    for (int i = 0; i < params; ++i) {
      scalars_.push_back(
          b_.param("p" + std::to_string(i), -64, 64));
    }
    block(b_, /*budget=*/static_cast<int>(rng_.uniform(3, 7)), /*depth=*/0);
    if (rng_.percent(60)) b_.emit(expr(b_, 2));
  }

  lang::TxInput random_input(Rng& rng) const {
    lang::TxInput in;
    for (std::size_t i = 0; i < scalars_.size(); ++i) {
      in.add(rng.uniform(-64, 64));
    }
    return in;
  }

 private:
  static constexpr TableId kTables[3] = {1, 2, 3};

  lang::Val expr(lang::ProcBuilder& b, int depth) {
    const int pick = static_cast<int>(rng_.uniform(0, depth > 0 ? 9 : 3));
    switch (pick) {
      case 0:
        return b.lit(rng_.uniform(-40, 40));
      case 1:
      case 2:
        return scalars_[rng_.bounded(scalars_.size())];
      case 3:
        if (!handles_.empty()) {
          const lang::Handle h = handles_[rng_.bounded(handles_.size())];
          return rng_.percent(25)
                     ? b.exists(h)
                     : b.field(h, static_cast<FieldId>(rng_.uniform(0, 2)));
        }
        return b.lit(rng_.uniform(0, 9));
      case 4:
        return !expr(b, depth - 1);
      case 5:
        return b.min(expr(b, depth - 1), expr(b, depth - 1));
      default: {
        const lang::Val lhs = expr(b, depth - 1);
        const lang::Val rhs = expr(b, depth - 1);
        switch (rng_.uniform(0, 9)) {
          case 0: return lhs + rhs;
          case 1: return lhs - rhs;
          case 2: return lhs * rhs;
          case 3: return lhs / rhs;
          case 4: return lhs % rhs;
          case 5: return lhs == rhs;
          case 6: return lhs < rhs;
          case 7: return lhs >= rhs;
          case 8: return lhs && rhs;
          default: return lhs || rhs;
        }
      }
    }
  }

  /// Any expression is a valid key: the interpreter reduces it mod the key
  /// space via the cast to Key, identically under both engines.
  lang::Val key(lang::ProcBuilder& b) { return expr(b, 2) % Value{32}; }

  void block(lang::ProcBuilder& b, int budget, int depth) {
    const std::size_t scalar_mark = scalars_.size();
    const std::size_t handle_mark = handles_.size();
    const std::size_t let_mark = lets_.size();
    for (int i = 0; i < budget; ++i) {
      switch (rng_.uniform(0, 11)) {
        case 0:
        case 1: {
          const lang::Handle h =
              b.get(kTables[rng_.bounded(3)], key(b));
          handles_.push_back(h);
          break;
        }
        case 2:
        case 3: {
          std::vector<std::pair<FieldId, lang::Val>> fields;
          const int nf = static_cast<int>(rng_.uniform(1, 2));
          for (int f = 0; f < nf; ++f) {
            fields.emplace_back(static_cast<FieldId>(rng_.uniform(0, 2)),
                                expr(b, 2));
          }
          b.put(kTables[rng_.bounded(3)], key(b), std::move(fields));
          break;
        }
        case 4: {
          const lang::Val v =
              b.let("v" + std::to_string(lets_.size()), expr(b, 2));
          scalars_.push_back(v);
          lets_.push_back(v);
          break;
        }
        case 5:
          if (lets_.size() > let_mark) {
            b.assign(lets_[let_mark + rng_.bounded(lets_.size() - let_mark)],
                     expr(b, 2));
          } else {
            b.emit(expr(b, 2));
          }
          break;
        case 6:
          b.emit(expr(b, 2));
          break;
        case 7:
          // Rarely-true abort so most cases exercise the commit path.
          b.abort_if((expr(b, 2) % Value{17}) == Value{0});
          break;
        case 8:
          if (rng_.percent(50)) b.del(kTables[rng_.bounded(3)], key(b));
          break;
        case 9:
        case 10:
          if (depth < 2) {
            const lang::Val cond = expr(b, 2);
            if (rng_.percent(50)) {
              b.if_(cond, [&](lang::ProcBuilder& t) {
                block(t, budget / 2 + 1, depth + 1);
              });
            } else {
              b.if_(
                  cond,
                  [&](lang::ProcBuilder& t) {
                    block(t, budget / 2 + 1, depth + 1);
                  },
                  [&](lang::ProcBuilder& e) {
                    block(e, budget / 2 + 1, depth + 1);
                  });
            }
          }
          break;
        default:
          if (depth < 2) {
            b.for_(b.lit(0), expr(b, 1) % Value{4}, 4,
                   [&](lang::ProcBuilder& body, lang::Val iv) {
                     scalars_.push_back(iv);
                     block(body, budget / 2 + 1, depth + 1);
                     scalars_.pop_back();
                   });
          }
          break;
      }
    }
    scalars_.resize(scalar_mark);
    handles_.resize(handle_mark);
    lets_.resize(let_mark);
  }

  lang::ProcBuilder& b_;
  Rng& rng_;
  std::vector<lang::Val> scalars_;
  std::vector<lang::Val> lets_;
  std::vector<lang::Handle> handles_;
};

void expect_predictions_identical(const sym::Prediction& vm,
                                  const sym::Prediction& tree,
                                  const std::string& context) {
  EXPECT_EQ(std::vector<TKey>(vm.keys.begin(), vm.keys.end()),
            std::vector<TKey>(tree.keys.begin(), tree.keys.end()))
      << context;
  EXPECT_EQ(std::vector<TKey>(vm.write_keys.begin(), vm.write_keys.end()),
            std::vector<TKey>(tree.write_keys.begin(), tree.write_keys.end()))
      << context;
  ASSERT_EQ(vm.pivots.size(), tree.pivots.size()) << context;
  for (std::size_t i = 0; i < vm.pivots.size(); ++i) {
    EXPECT_EQ(vm.pivots[i].key, tree.pivots[i].key) << context << " pivot " << i;
    EXPECT_EQ(vm.pivots[i].version_hash, tree.pivots[i].version_hash)
        << context << " pivot " << i;
  }
}

TEST(BytecodeFuzzTest, RandomProceduresAreByteIdenticalUnderBothEngines) {
  constexpr int kCases = 1000;
  constexpr int kInputsPerCase = 3;

  store::VersionedStore s;
  Rng content(0xC0FFEE);
  for (TableId t : {1, 2, 3}) {
    for (Key k = 0; k < 32; ++k) {
      if (content.percent(20)) continue;  // leave some keys absent
      store::Row row;
      for (FieldId f = 0; f < 3; ++f) {
        row.set(f, content.uniform(-100, 100));
      }
      s.put({t, k}, std::move(row), 0);
    }
  }
  store::SnapshotView view(s, 0);

  const lang::Interp vm_interp;
  const lang::Interp tree_interp(lang::Interp::Options{.tree_walk = true});

  int exec_compared = 0;
  int pred_compared = 0;
  int pred_compiled = 0;
  for (int c = 0; c < kCases; ++c) {
    Rng rng(0xF022u + static_cast<std::uint64_t>(c) * 0x9e3779b97f4a7c15ull);
    lang::ProcBuilder b("fuzz_" + std::to_string(c));
    FuzzGen gen(b, rng);
    gen.generate();
    const lang::Proc proc = std::move(b).build();
    ASSERT_NE(proc.code, nullptr) << proc.name;

    for (int i = 0; i < kInputsPerCase; ++i) {
      const lang::TxInput in = gen.random_input(rng);
      const std::string ctx = proc.name + " input " + std::to_string(i);
      const Outcome vm = run_one(vm_interp, proc, in, view);
      const Outcome tree = run_one(tree_interp, proc, in, view);
      expect_identical(vm, tree, ctx);
      ++exec_compared;
    }

    // Prediction side: symbolic execution may legitimately bail on some
    // generated shapes (state cap); compare whenever a profile exists.
    std::unique_ptr<sym::TxProfile> profile;
    try {
      profile = sym::Profiler::profile(proc);
    } catch (const std::exception&) {
      continue;
    }
    if (profile == nullptr || !profile->complete()) continue;
    if (profile->pred_code() != nullptr) ++pred_compiled;
    for (int i = 0; i < kInputsPerCase; ++i) {
      const lang::TxInput in = gen.random_input(rng);
      sym::Prediction from_vm, from_tree;
      profile->predict_into(in, view, from_vm, /*tree_walk=*/false);
      profile->predict_into(in, view, from_tree, /*tree_walk=*/true);
      expect_predictions_identical(
          from_vm, from_tree, proc.name + " predict " + std::to_string(i));
      ++pred_compared;
    }
  }
  EXPECT_EQ(exec_compared, kCases * kInputsPerCase);
  EXPECT_GT(pred_compared, 0);
  EXPECT_GT(pred_compiled, kCases / 2)
      << "prediction compiler fell back to tree-walking on most profiles";
}

// ---------------------------------------------------------------------------
// Engine-level equivalence matrix
// ---------------------------------------------------------------------------

enum class Wl { kTpcc, kRubis, kCatalog };

std::unique_ptr<db::Database> run_workload(Wl which, sched::EngineConfig cfg,
                                           int batches, std::size_t n) {
  cfg.telemetry = true;
  auto db = std::make_unique<db::Database>(cfg);
  Rng rng(4242);
  switch (which) {
    case Wl::kTpcc: {
      workloads::tpcc::Workload wl(*db, workloads::tpcc::Scale::tiny(2));
      for (int i = 0; i < batches; ++i) db->execute(wl.batch(n, rng));
      break;
    }
    case Wl::kRubis: {
      workloads::rubis::Workload wl(*db, workloads::rubis::Scale::small());
      for (int i = 0; i < batches; ++i) db->execute(wl.batch(n, rng));
      break;
    }
    case Wl::kCatalog: {
      workloads::micro::CatalogOptions wopts;
      wopts.catalog_keys = 80;
      wopts.accounts = 400;
      wopts.zipf_theta = 1.1;
      workloads::micro::CatalogWorkload wl(*db, wopts);
      for (int i = 0; i < batches; ++i) {
        db->execute(wl.batch(n, /*reprice_count=*/n / 4, rng));
      }
      break;
    }
  }
  return db;
}

TEST(BytecodeEngineTest, AblationIsAPurePerformanceSwitch) {
  // For every workload: a tree-walking single-worker run is the oracle;
  // the VM must match it byte for byte at every worker count and pipeline
  // depth (state hash + deterministic telemetry).
  for (Wl which : {Wl::kTpcc, Wl::kRubis, Wl::kCatalog}) {
    sched::EngineConfig oracle_cfg;
    oracle_cfg.workers = 1;
    oracle_cfg.tree_walk_ablation = true;
    auto oracle = run_workload(which, oracle_cfg, /*batches=*/3, /*n=*/48);
    const std::uint64_t ref_hash = oracle->state_hash();
    const std::string ref_metrics =
        oracle->telemetry()->serialize_deterministic();
    ASSERT_NE(ref_hash, 0u);
    ASSERT_FALSE(ref_metrics.empty());

    for (unsigned workers : {1u, 2u, 8u}) {
      for (unsigned depth : {0u, 2u}) {
        sched::EngineConfig cfg;
        cfg.workers = workers;
        cfg.pipeline_depth = depth;
        auto db = run_workload(which, cfg, 3, 48);
        EXPECT_EQ(db->state_hash(), ref_hash)
            << "workload " << static_cast<int>(which) << " workers "
            << workers << " depth " << depth;
        EXPECT_EQ(db->telemetry()->serialize_deterministic(), ref_metrics)
            << "workload " << static_cast<int>(which) << " workers "
            << workers << " depth " << depth;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// IT prediction memo
// ---------------------------------------------------------------------------

constexpr TableId kBumpT = 5;
constexpr FieldId kBumpV = 0;
constexpr Value kBumpKeys = 8;

lang::Proc make_bump() {
  lang::ProcBuilder b("bump");
  auto k = b.param("k", 0, kBumpKeys - 1);
  auto amt = b.param("amt", 1, 3);
  auto row = b.get(kBumpT, k);
  b.put(kBumpT, k, {{kBumpV, row.field(kBumpV) + amt}});
  return std::move(b).build();
}

std::unique_ptr<db::Database> run_bumps(sched::EngineConfig cfg, int batches) {
  cfg.telemetry = true;
  auto db = std::make_unique<db::Database>(cfg);
  const sched::ProcId bump = db->register_procedure(make_bump());
  for (Key k = 0; k < static_cast<Key>(kBumpKeys); ++k) {
    db->store().put({kBumpT, k}, store::Row{{kBumpV, 0}}, 0);
  }
  db->finalize();
  Rng rng(77);
  for (int i = 0; i < batches; ++i) {
    std::vector<sched::TxRequest> batch;
    for (int t = 0; t < 96; ++t) {
      sched::TxRequest r;
      r.proc = bump;
      r.input.add(rng.uniform(0, kBumpKeys - 1));
      r.input.add(rng.uniform(1, 3));
      batch.push_back(std::move(r));
    }
    db->execute(std::move(batch));
  }
  return db;
}

TEST(ItMemoTest, MemoHitsAndOutcomesStayIdentical) {
  // 24 distinct (k, amt) inputs over 96-transaction batches: the memo must
  // hit, and with it_memo_check on, every hit is re-derived and asserted
  // against a fresh prediction — a stale entry would abort the run.
  sched::EngineConfig plain;
  plain.workers = 4;
  sched::EngineConfig memo = plain;
  memo.it_memo = true;
  memo.it_memo_check = true;

  auto ref = run_bumps(plain, 5);
  auto memod = run_bumps(memo, 5);
  EXPECT_EQ(ref->state_hash(), memod->state_hash());
  EXPECT_EQ(ref->telemetry()->serialize_deterministic(),
            memod->telemetry()->serialize_deterministic());
  EXPECT_EQ(ref->engine().it_memo_hits(), 0u);
  EXPECT_GT(memod->engine().it_memo_hits(), 0u);
  EXPECT_GT(memod->engine().it_memo_misses(), 0u);
}

// ---------------------------------------------------------------------------
// Crash-recovery fuzz arm: durable path equivalence with the oracle
// ---------------------------------------------------------------------------

TEST(BytecodeRecoveryTest, RecoversToSameWitnessAsTreeWalker) {
  auto setup = [](db::Database& d) {
    d.register_procedure(make_bump());
    for (Key k = 0; k < static_cast<Key>(kBumpKeys); ++k) {
      d.store().put({kBumpT, k}, store::Row{{kBumpV, 0}}, 0);
    }
    d.finalize();
  };
  auto make_batch = [](std::size_t n, Rng& rng) {
    std::vector<sched::TxRequest> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      sched::TxRequest r;
      r.proc = 0;
      r.input.add(rng.uniform(0, kBumpKeys - 1));
      r.input.add(rng.uniform(1, 3));
      out.push_back(std::move(r));
    }
    return out;
  };

  consensus::RecoveryFuzzOptions opts;
  opts.warmup_rounds = 5;
  opts.armed_rounds = 5;
  opts.post_rounds = 3;
  opts.batch_size = 8;
  opts.recovery.checkpoint_interval = 3;
  opts.config.workers = 2;

  const consensus::RecoveryFuzzReport vm_rep =
      consensus::run_recovery_fuzz(setup, make_batch, opts, /*seed=*/31337);
  opts.config.tree_walk_ablation = true;
  const consensus::RecoveryFuzzReport tree_rep =
      consensus::run_recovery_fuzz(setup, make_batch, opts, /*seed=*/31337);

  EXPECT_TRUE(vm_rep.ok());
  EXPECT_TRUE(tree_rep.ok());
  EXPECT_EQ(vm_rep.witness_hash, tree_rep.witness_hash);
  EXPECT_EQ(vm_rep.state_hash, tree_rep.state_hash);
  EXPECT_EQ(vm_rep.batches_submitted, tree_rep.batches_submitted);
}

}  // namespace
}  // namespace prog
