// Fine-grained RUBiS semantics: per-entity id sequences, max-bid updates,
// quantity clamping, rating accumulation, and registration.
#include <gtest/gtest.h>

#include "db/database.hpp"
#include "workloads/rubis.hpp"

namespace prog::workloads::rubis {
namespace {

struct Fixture {
  db::Database db;
  std::unique_ptr<Workload> wl;
  Scale sc = Scale::small();

  Fixture() : db(make_config()) { wl = std::make_unique<Workload>(db, sc); }

  static sched::EngineConfig make_config() {
    sched::EngineConfig cfg;
    cfg.workers = 2;
    cfg.capture_outputs = true;
    cfg.check_containment = true;
    return cfg;
  }

  sched::TxRequest bid(Value user, Value item, Value amount) {
    sched::TxRequest r;
    r.proc = wl->store_bid();
    r.input.add(user).add(item).add(amount);
    return r;
  }
  sched::TxRequest buy(Value user, Value item, Value qty) {
    sched::TxRequest r;
    r.proc = wl->store_buy_now();
    r.input.add(user).add(item).add(qty);
    return r;
  }
  sched::TxRequest comment(Value from, Value to, Value rating) {
    sched::TxRequest r;
    r.proc = wl->store_comment();
    r.input.add(from).add(to).add(rating);
    return r;
  }

  store::RowPtr row(TableId t, std::int64_t key) {
    return db.store().get({t, static_cast<Key>(key)});
  }
};

TEST(RubisDetailTest, BidsGetPerItemSequenceAndRaiseMaxBid) {
  Fixture f;
  f.db.execute({f.bid(1, 50, 300)});
  f.db.execute({f.bid(2, 50, 200)});   // lower: max stays
  f.db.execute({f.bid(3, 50, 400)});   // higher: max moves
  const store::RowPtr item = f.row(kItems, 50);
  EXPECT_EQ(item->at(kBidCount), 3);
  EXPECT_EQ(item->at(kMaxBid), 400);
  for (std::int64_t s = 0; s < 3; ++s) {
    ASSERT_NE(f.row(kBids, bid_key(50, s)), nullptr) << s;
  }
  EXPECT_EQ(f.row(kBids, bid_key(50, 0))->at(kBidAmount), 300);
  EXPECT_EQ(f.row(kBids, bid_key(50, 1))->at(kBidder), 2);
  // Bids on another item use an independent sequence.
  f.db.execute({f.bid(1, 51, 10)});
  EXPECT_EQ(f.row(kItems, 51)->at(kBidCount), 1);
  ASSERT_NE(f.row(kBids, bid_key(51, 0)), nullptr);
}

TEST(RubisDetailTest, BuyNowClampsQuantityAtZero) {
  Fixture f;
  // Loader stocks 10 units; buy 4+4+4: the last one clamps to 0.
  f.db.execute({f.buy(1, 60, 4)});
  f.db.execute({f.buy(2, 60, 4)});
  f.db.execute({f.buy(3, 60, 4)});
  const store::RowPtr item = f.row(kItems, 60);
  EXPECT_EQ(item->at(kQuantity), 0);
  EXPECT_EQ(item->at(kBuyCount), 3);
  for (std::int64_t s = 0; s < 3; ++s) {
    ASSERT_NE(f.row(kBuyNow, buy_now_key(60, s)), nullptr);
  }
}

TEST(RubisDetailTest, CommentsAccumulateRating) {
  Fixture f;
  f.db.execute({f.comment(1, 9, 5)});
  f.db.execute({f.comment(2, 9, -3)});
  f.db.execute({f.comment(3, 9, 4)});
  const store::RowPtr user = f.row(kUsers, 9);
  EXPECT_EQ(user->at(kRating), 6);
  EXPECT_EQ(user->at(kCommentCnt), 3);
  EXPECT_EQ(f.row(kComments, comment_key(9, 1))->at(kCommentRating), -3);
  EXPECT_EQ(f.row(kComments, comment_key(9, 1))->at(kFromUser), 2);
}

TEST(RubisDetailTest, RegistrationExtendsGlobalSequences) {
  Fixture f;
  const Value users_before = f.row(kCounters, kUserCtr)->at(kNext);
  const Value items_before = f.row(kCounters, kItemCtr)->at(kNext);

  sched::TxRequest ru;
  ru.proc = f.wl->register_user();
  ru.input.add(0);
  auto r1 = f.db.execute({ru});
  ASSERT_EQ(r1.outputs.size(), 1u);
  EXPECT_EQ(r1.outputs[0].second.at(0), users_before);
  ASSERT_NE(f.row(kUsers, users_before), nullptr);

  sched::TxRequest ri;
  ri.proc = f.wl->register_item();
  ri.input.add(5).add(7).add(1000);
  auto r2 = f.db.execute({ri});
  const Value new_item = r2.outputs[0].second.at(0);
  EXPECT_EQ(new_item, items_before);
  ASSERT_NE(f.row(kItems, new_item), nullptr);
  EXPECT_EQ(f.row(kItems, new_item)->at(kQuantity), 7);
  EXPECT_EQ(f.row(kUsers, 5)->at(kListings), 1);

  // The freshly registered item accepts bids like any other.
  f.db.execute({f.bid(1, new_item, 50)});
  EXPECT_EQ(f.row(kItems, new_item)->at(kBidCount), 1);
}

TEST(RubisDetailTest, SameBatchBidsOnOneItemSerializeViaRetries) {
  Fixture f;
  auto result = f.db.execute({f.bid(1, 70, 10), f.bid(2, 70, 20),
                              f.bid(3, 70, 30)});
  EXPECT_EQ(result.committed, 3u);
  // Round 0: bids 2+3 fail behind bid 1. Round 1: bid 2 commits, bid 3
  // fails again (the item moved under it). Round 2: bid 3 commits.
  EXPECT_EQ(result.validation_aborts, 3u);
  EXPECT_EQ(result.rounds, 2u);
  EXPECT_EQ(f.row(kItems, 70)->at(kBidCount), 3);
  EXPECT_EQ(f.row(kItems, 70)->at(kMaxBid), 30);
  const auto bad = check_invariants(f.db.store(), f.sc);
  EXPECT_TRUE(bad.empty()) << (bad.empty() ? "" : bad.front());
}

}  // namespace
}  // namespace prog::workloads::rubis
