// Unit tests for the common utility layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "common/interner.hpp"
#include "common/queues.hpp"
#include "common/rng.hpp"
#include "common/small_map.hpp"
#include "common/sync.hpp"
#include "common/types.hpp"

namespace prog {
namespace {

TEST(TypesTest, TKeyEqualityAndOrdering) {
  const TKey a{1, 10};
  const TKey b{1, 10};
  const TKey c{1, 11};
  const TKey d{2, 0};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_LT(c, d);
}

TEST(TypesTest, TKeyHashSpreads) {
  TKeyHash h;
  std::vector<std::size_t> hashes;
  for (Key k = 0; k < 1000; ++k) hashes.push_back(h(TKey{1, k}));
  std::sort(hashes.begin(), hashes.end());
  const auto unique_count =
      std::unique(hashes.begin(), hashes.end()) - hashes.begin();
  EXPECT_GE(unique_count, 999);  // essentially no collisions on a small set
}

TEST(Mix64Test, IsInjectiveOnSmallRange) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 4096; ++i) out.push_back(mix64(i));
  std::sort(out.begin(), out.end());
  EXPECT_EQ(std::unique(out.begin(), out.end()), out.end());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(5, 15);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 15);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng r(7);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 11000; ++i) ++counts[static_cast<std::size_t>(r.uniform(0, 10))];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, UniformDegenerateRange) {
  Rng r(1);
  EXPECT_EQ(r.uniform(3, 3), 3);
}

TEST(RngTest, PercentZeroAndHundred) {
  Rng r(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.percent(0));
    EXPECT_TRUE(r.percent(100));
  }
}

TEST(InternerTest, RoundTrip) {
  StringInterner si;
  const Value a = si.intern("alice");
  const Value b = si.intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(si.intern("alice"), a);
  EXPECT_EQ(si.lookup(a), "alice");
  EXPECT_EQ(si.lookup(b), "bob");
  EXPECT_EQ(si.size(), 2u);
}

TEST(InternerTest, UnknownIdThrows) {
  StringInterner si;
  EXPECT_THROW(si.lookup(99), UsageError);
}

TEST(SmallMapTest, SetGetOverwrite) {
  SmallMap<int, int> m;
  m.set(3, 30);
  m.set(1, 10);
  m.set(2, 20);
  EXPECT_EQ(m.get(1), 10);
  EXPECT_EQ(m.get(3), 30);
  m.set(1, 11);
  EXPECT_EQ(m.get(1), 11);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_FALSE(m.get(99).has_value());
}

TEST(SmallMapTest, KeepsSortedIterationOrder) {
  SmallMap<int, int> m;
  for (int k : {5, 1, 4, 2, 3}) m.set(k, k * 10);
  int prev = 0;
  for (const auto& [k, v] : m) {
    EXPECT_GT(k, prev);
    EXPECT_EQ(v, k * 10);
    prev = k;
  }
}

TEST(SmallMapTest, EraseAndMerge) {
  SmallMap<int, int> a;
  a.set(1, 1);
  a.set(2, 2);
  EXPECT_TRUE(a.erase(1));
  EXPECT_FALSE(a.erase(1));
  SmallMap<int, int> b;
  b.set(2, 20);
  b.set(3, 30);
  a.merge_from(b);
  EXPECT_EQ(a.get(2), 20);
  EXPECT_EQ(a.get(3), 30);
  EXPECT_EQ(a.size(), 2u);
}

TEST(TicketDispenserTest, HandsOutEachIndexOnce) {
  TicketDispenser d(100);
  std::vector<std::atomic<int>> seen(100);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      while (auto i = d.claim()) seen[*i].fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.try_pop(), i);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueueTest, ConcurrentProducersConsumers) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 5000;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      while (popped.load() < 4 * kPerProducer) {
        if (auto v = q.try_pop()) {
          sum.fetch_add(*v);
          popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long long n = 4LL * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(PhaseBarrierTest, ExactlyOneSerialParty) {
  PhaseBarrier barrier(4);
  std::atomic<int> serial{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        if (barrier.arrive_and_wait()) serial.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial.load(), 50);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock mu;
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        std::scoped_lock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(GateTest, ReleasesWaiters) {
  Gate gate;
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      gate.wait();
      released.fetch_add(1);
    });
  }
  EXPECT_EQ(released.load(), 0);
  gate.open();
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), 3);
}

TEST(CheckTest, ThrowsInvariantError) {
  EXPECT_THROW(PROG_CHECK(1 == 2), InvariantError);
  EXPECT_NO_THROW(PROG_CHECK(1 == 1));
}

}  // namespace
}  // namespace prog
