// Failure-injection and stress tests for the deterministic engine:
// pivot-change storms, pathological batches, long-running engines with GC,
// and adversarial transaction shapes.
#include <gtest/gtest.h>

#include "baselines/variants.hpp"
#include "common/rng.hpp"
#include "db/database.hpp"
#include "lang/builder.hpp"

namespace prog {
namespace {

constexpr TableId kHot = 1;
constexpr TableId kLog = 2;
constexpr TableId kData = 3;
constexpr FieldId kV = 0;

/// Every instance reads the same hot pivot and writes a key derived from it:
/// in a batch of N, all N conflict and N-1 abort per round — the worst case
/// for MF, the motivating case for SF.
lang::Proc make_hot_chain() {
  lang::ProcBuilder b("hot_chain");
  auto payload = b.param("payload", 0, 1 << 20);
  auto h = b.get(kHot, b.lit(0));
  auto seq = b.let("seq", h.field(kV));
  b.put(kLog, seq, {{kV, payload}});
  b.put(kHot, b.lit(0), {{kV, seq + 1}});
  return std::move(b).build();
}

lang::Proc make_touch() {
  lang::ProcBuilder b("touch");
  auto k = b.param("k", 0, 10000);
  auto h = b.get(kData, k);
  b.put(kData, k, {{kV, h.field(kV) + 1}});
  return std::move(b).build();
}

TEST(FailureTest, PivotStormConvergesUnderMf) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  cfg.check_containment = true;
  db::Database db(cfg);
  const auto hot = db.register_procedure(make_hot_chain());
  db.store().put({kHot, 0}, store::Row{{kV, 0}}, 0);
  db.finalize();

  std::vector<sched::TxRequest> batch;
  for (Value i = 0; i < 32; ++i) {
    sched::TxRequest r;
    r.proc = hot;
    r.input.add(i);
    batch.push_back(std::move(r));
  }
  const auto result = db.execute(std::move(batch));
  EXPECT_EQ(result.committed, 32u);
  // Cascade: each round commits exactly one, the rest re-fail.
  EXPECT_EQ(result.rounds, 31u);
  EXPECT_EQ(result.validation_aborts, 31u * 32u / 2u);
  EXPECT_EQ(db.store().get({kHot, 0})->at(kV), 32);
  for (Key s = 0; s < 32; ++s) {
    ASSERT_NE(db.store().get({kLog, s}), nullptr) << s;
  }
}

TEST(FailureTest, PivotStormOneRoundUnderSf) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  cfg.parallel_failed = false;
  db::Database db(cfg);
  const auto hot = db.register_procedure(make_hot_chain());
  db.store().put({kHot, 0}, store::Row{{kV, 0}}, 0);
  db.finalize();

  std::vector<sched::TxRequest> batch;
  for (Value i = 0; i < 32; ++i) {
    sched::TxRequest r;
    r.proc = hot;
    r.input.add(i);
    batch.push_back(std::move(r));
  }
  const auto result = db.execute(std::move(batch));
  EXPECT_EQ(result.committed, 32u);
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.validation_aborts, 31u);  // one failed attempt each
  EXPECT_EQ(db.store().get({kHot, 0})->at(kV), 32);
}

TEST(FailureTest, MfRoundCapFallsBackToSfDeterministically) {
  auto run = [&](unsigned cap) {
    sched::EngineConfig cfg;
    cfg.workers = 4;
    cfg.max_mf_rounds = cap;
    db::Database db(cfg);
    const auto hot = db.register_procedure(make_hot_chain());
    db.store().put({kHot, 0}, store::Row{{kV, 0}}, 0);
    db.finalize();
    std::vector<sched::TxRequest> batch;
    for (Value i = 0; i < 32; ++i) {
      sched::TxRequest r;
      r.proc = hot;
      r.input.add(i);
      batch.push_back(std::move(r));
    }
    return std::make_pair(db.execute(std::move(batch)), db.state_hash());
  };

  const auto [capped, capped_hash] = run(3);
  const auto [unbounded, unbounded_hash] = run(0);

  // Unbounded MF grinds through the storm one commit per round.
  EXPECT_EQ(unbounded.rounds, 31u);
  EXPECT_EQ(unbounded.sf_fallbacks, 0u);

  // Capped: the initial parallel round commits 1, MF rounds 1..3 commit one
  // each, and the 28 stragglers finish on the SF path in one final round.
  EXPECT_EQ(capped.committed, 32u);
  EXPECT_EQ(capped.rounds, 4u);
  EXPECT_EQ(capped.sf_fallbacks, 28u);

  // The fallback is invisible in the final state: same hash either way.
  EXPECT_EQ(capped_hash, unbounded_hash);
}

TEST(FailureTest, EngineStatsAccumulateAcrossBatches) {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.max_mf_rounds = 1;
  db::Database db(cfg);
  const auto hot = db.register_procedure(make_hot_chain());
  db.store().put({kHot, 0}, store::Row{{kV, 0}}, 0);
  db.finalize();
  for (int b = 0; b < 3; ++b) {
    std::vector<sched::TxRequest> batch;
    for (Value i = 0; i < 8; ++i) {
      sched::TxRequest r;
      r.proc = hot;
      r.input.add(i);
      batch.push_back(std::move(r));
    }
    db.execute(std::move(batch));
  }
  const sched::EngineStats s = db.engine_stats();
  EXPECT_EQ(s.batches, 3u);
  EXPECT_EQ(s.committed, 24u);
  EXPECT_EQ(s.mf_fallback_batches, 3u);    // every storm batch hit the cap
  EXPECT_EQ(s.mf_fallback_txns, 3u * 6u);  // 8 minus 2 commits before fallback
  EXPECT_GT(s.validation_aborts, 0u);
}

TEST(FailureTest, SfAndMfAgreeOnStormState) {
  auto run = [&](bool mf) {
    sched::EngineConfig cfg;
    cfg.workers = 4;
    cfg.parallel_failed = mf;
    db::Database db(cfg);
    const auto hot = db.register_procedure(make_hot_chain());
    db.store().put({kHot, 0}, store::Row{{kV, 0}}, 0);
    db.finalize();
    std::vector<sched::TxRequest> batch;
    for (Value i = 0; i < 24; ++i) {
      sched::TxRequest r;
      r.proc = hot;
      r.input.add(i * 7);
      batch.push_back(std::move(r));
    }
    db.execute(std::move(batch));
    return db.state_hash();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(FailureTest, HugeBatchSingleEngine) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  db::Database db(cfg);
  const auto touch = db.register_procedure(make_touch());
  for (Key k = 0; k <= 10000; ++k) {
    db.store().put({kData, k}, store::Row{{kV, 0}}, 0);
  }
  db.finalize();
  Rng rng(9);
  std::vector<sched::TxRequest> batch;
  for (int i = 0; i < 20000; ++i) {
    sched::TxRequest r;
    r.proc = touch;
    r.input.add(rng.uniform(0, 10000));
    batch.push_back(std::move(r));
  }
  const auto result = db.execute(std::move(batch));
  EXPECT_EQ(result.committed, 20000u);
  EXPECT_EQ(result.validation_aborts, 0u);
}

TEST(FailureTest, ManyBatchesWithGc) {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.gc_horizon = 8;
  db::Database db(cfg);
  const auto touch = db.register_procedure(make_touch());
  for (Key k = 0; k < 100; ++k) {
    db.store().put({kData, k}, store::Row{{kV, 0}}, 0);
  }
  db.finalize();
  Rng rng(4);
  for (int b = 0; b < 64; ++b) {
    std::vector<sched::TxRequest> batch;
    for (int i = 0; i < 20; ++i) {
      sched::TxRequest r;
      r.proc = touch;
      r.input.add(rng.uniform(0, 99));
      batch.push_back(std::move(r));
    }
    db.execute(std::move(batch));
  }
  // GC kept version chains bounded: at most a handful per key.
  EXPECT_LT(db.store().version_count(), 100u * 20u);
  // Total increments preserved.
  std::int64_t total = 0;
  for (Key k = 0; k < 100; ++k) {
    total += db.store().get({kData, k})->at(kV);
  }
  EXPECT_EQ(total, 64 * 20);
}

TEST(FailureTest, AllRotBatchWithMoreWorkersThanWork) {
  sched::EngineConfig cfg;
  cfg.workers = 8;
  db::Database db(cfg);
  lang::ProcBuilder b("peek");
  auto k = b.param("k", 0, 10);
  auto h = b.get(kData, k);
  b.emit(h.field(kV));
  const auto peek = db.register_procedure(std::move(b).build());
  db.store().put({kData, 1}, store::Row{{kV, 7}}, 0);
  db.finalize();
  std::vector<sched::TxRequest> batch;
  for (Value i = 0; i < 3; ++i) {
    sched::TxRequest r;
    r.proc = peek;
    r.input.add(i);
    batch.push_back(std::move(r));
  }
  EXPECT_EQ(db.execute(std::move(batch)).committed, 3u);
}

TEST(FailureTest, AlternatingStormAndQuietBatches) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  db::Database db(cfg);
  const auto hot = db.register_procedure(make_hot_chain());
  const auto touch = db.register_procedure(make_touch());
  db.store().put({kHot, 0}, store::Row{{kV, 0}}, 0);
  for (Key k = 0; k < 50; ++k) {
    db.store().put({kData, k}, store::Row{{kV, 0}}, 0);
  }
  db.finalize();
  Rng rng(8);
  std::uint64_t committed = 0;
  for (int b = 0; b < 10; ++b) {
    std::vector<sched::TxRequest> batch;
    for (int i = 0; i < 16; ++i) {
      sched::TxRequest r;
      if (b % 2 == 0) {
        r.proc = hot;
        r.input.add(rng.uniform(0, 1000));
      } else {
        r.proc = touch;
        r.input.add(rng.uniform(0, 49));
      }
      batch.push_back(std::move(r));
    }
    committed += db.execute(std::move(batch)).committed;
  }
  EXPECT_EQ(committed, 160u);
  EXPECT_EQ(db.store().get({kHot, 0})->at(kV), 5 * 16);
}

TEST(FailureTest, CalvinStormDefersDeterministically) {
  auto run = [&] {
    sched::EngineConfig cfg = baselines::calvin(100, 4).config;
    db::Database db(cfg);
    const auto hot = db.register_procedure(make_hot_chain());
    db.store().put({kHot, 0}, store::Row{{kV, 0}}, 0);
    db.finalize();
    std::vector<sched::TxRequest> pending;
    for (Value i = 0; i < 8; ++i) {
      sched::TxRequest r;
      r.proc = hot;
      r.input.add(i);
      pending.push_back(std::move(r));
    }
    int safety = 0;
    while (!pending.empty() && ++safety < 50) {
      auto result = db.execute(std::move(pending));
      pending = std::move(result.deferred);
    }
    EXPECT_TRUE(pending.empty());
    return db.state_hash();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace prog
