// Tests for the interval solver, including a brute-force property sweep.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "expr/expr.hpp"
#include "solver/solver.hpp"

namespace prog::solver {
namespace {

using expr::Expr;
using expr::ExprPool;
using expr::Op;

struct Fixture {
  ExprPool pool;
  DomainMap domains;
  Solver solver;

  const Expr* var(std::uint32_t slot, Value lo, Value hi) {
    const Expr* v = pool.input(slot);
    domains.declare(v, {lo, hi});
    return v;
  }

  Sat check(std::vector<const Expr*> cs) {
    return solver.check(cs, domains);
  }
};

TEST(IntervalTest, BasicOps) {
  EXPECT_EQ(iadd({1, 2}, {10, 20}), (Interval{11, 22}));
  EXPECT_EQ(isub({1, 2}, {10, 20}), (Interval{-19, -8}));
  EXPECT_EQ(imul({-2, 3}, {4, 5}), (Interval{-10, 15}));
  EXPECT_EQ(ineg({3, 7}), (Interval{-7, -3}));
  EXPECT_EQ(imin({1, 5}, {3, 9}), (Interval{1, 5}));
  EXPECT_EQ(imax({1, 5}, {3, 9}), (Interval{3, 9}));
}

TEST(IntervalTest, EmptyPropagates) {
  EXPECT_TRUE(iadd(Interval::empty(), {1, 2}).is_empty());
  EXPECT_TRUE(imul({1, 2}, Interval::empty()).is_empty());
}

TEST(IntervalTest, SaturationNoOverflow) {
  const Interval big{Interval::kInf, Interval::kInf};
  EXPECT_EQ(iadd(big, big).hi, Interval::kInf);
  EXPECT_EQ(imul(big, big).hi, Interval::kInf);
  EXPECT_EQ(imul(big, ineg(big)).lo, -Interval::kInf);
}

TEST(IntervalTest, DivContainsTrueQuotients) {
  const Interval r = idiv({10, 20}, {2, 5});
  for (Value a = 10; a <= 20; ++a) {
    for (Value b = 2; b <= 5; ++b) EXPECT_TRUE(r.contains(a / b));
  }
}

TEST(IntervalTest, ModBounds) {
  const Interval r = imod({0, 100}, {7, 7});
  for (Value a = 0; a <= 100; ++a) EXPECT_TRUE(r.contains(a % 7));
  EXPECT_GE(r.lo, 0);
  EXPECT_LE(r.hi, 6);
}

TEST(SolverTest, TrivialSat) {
  Fixture f;
  const Expr* x = f.var(0, 0, 10);
  EXPECT_EQ(f.check({f.pool.cmp(Op::kGt, x, f.pool.constant(5))}), Sat::kSat);
}

TEST(SolverTest, TrivialUnsat) {
  Fixture f;
  const Expr* x = f.var(0, 0, 10);
  EXPECT_EQ(f.check({f.pool.cmp(Op::kGt, x, f.pool.constant(10))}),
            Sat::kUnsat);
}

TEST(SolverTest, BoundaryIsSat) {
  Fixture f;
  const Expr* x = f.var(0, 0, 10);
  EXPECT_EQ(f.check({f.pool.cmp(Op::kGe, x, f.pool.constant(10))}), Sat::kSat);
  EXPECT_EQ(f.check({f.pool.cmp(Op::kLe, x, f.pool.constant(0))}), Sat::kSat);
}

TEST(SolverTest, ConjunctionNarrowsToUnsat) {
  Fixture f;
  const Expr* x = f.var(0, 0, 100);
  // x > 50 && x < 40
  EXPECT_EQ(f.check({f.pool.cmp(Op::kGt, x, f.pool.constant(50)),
                     f.pool.cmp(Op::kLt, x, f.pool.constant(40))}),
            Sat::kUnsat);
}

TEST(SolverTest, ConjunctionTightButSat) {
  Fixture f;
  const Expr* x = f.var(0, 0, 100);
  EXPECT_EQ(f.check({f.pool.cmp(Op::kGe, x, f.pool.constant(50)),
                     f.pool.cmp(Op::kLe, x, f.pool.constant(50))}),
            Sat::kSat);
}

TEST(SolverTest, TwoVariableChain) {
  Fixture f;
  const Expr* x = f.var(0, 0, 10);
  const Expr* y = f.var(1, 0, 10);
  // x < y && y < x is unsat.
  EXPECT_EQ(f.check({f.pool.cmp(Op::kLt, x, y), f.pool.cmp(Op::kLt, y, x)}),
            Sat::kUnsat);
  // x < y && y <= 1 forces x == 0.
  EXPECT_EQ(f.check({f.pool.cmp(Op::kLt, x, y),
                     f.pool.cmp(Op::kLe, y, f.pool.constant(1))}),
            Sat::kSat);
}

TEST(SolverTest, EqualityPropagation) {
  Fixture f;
  const Expr* x = f.var(0, 0, 100);
  const Expr* y = f.var(1, 50, 60);
  EXPECT_EQ(f.check({f.pool.cmp(Op::kEq, x, y),
                     f.pool.cmp(Op::kLt, x, f.pool.constant(50))}),
            Sat::kUnsat);
}

TEST(SolverTest, ArithmeticNarrowing) {
  Fixture f;
  const Expr* x = f.var(0, 0, 10);
  // x + 5 == 3 is unsat for x >= 0.
  EXPECT_EQ(f.check({f.pool.cmp(Op::kEq, f.pool.add(x, f.pool.constant(5)),
                                f.pool.constant(3))}),
            Sat::kUnsat);
  // x * 3 == 9 is sat (x == 3).
  EXPECT_EQ(f.check({f.pool.cmp(Op::kEq, f.pool.mul(x, f.pool.constant(3)),
                                f.pool.constant(9))}),
            Sat::kSat);
  // x * 3 == 10 has no integer solution.
  EXPECT_EQ(f.check({f.pool.cmp(Op::kEq, f.pool.mul(x, f.pool.constant(3)),
                                f.pool.constant(10))}),
            Sat::kUnsat);
}

TEST(SolverTest, NeedsSplittingParity) {
  Fixture f;
  const Expr* x = f.var(0, 0, 9);
  // (x % 2 == 0) && (x % 2 == 1) requires search to refute.
  const Expr* m = f.pool.mod(x, f.pool.constant(2));
  EXPECT_EQ(f.check({f.pool.cmp(Op::kEq, m, f.pool.constant(0)),
                     f.pool.cmp(Op::kEq, m, f.pool.constant(1))}),
            Sat::kUnsat);
}

TEST(SolverTest, DisjunctionHandled) {
  Fixture f;
  const Expr* x = f.var(0, 0, 10);
  const Expr* a = f.pool.cmp(Op::kLt, x, f.pool.constant(0));
  const Expr* b = f.pool.cmp(Op::kGt, x, f.pool.constant(10));
  EXPECT_EQ(f.check({f.pool.logical_or(a, b)}), Sat::kUnsat);
  const Expr* c = f.pool.cmp(Op::kEq, x, f.pool.constant(7));
  EXPECT_EQ(f.check({f.pool.logical_or(a, c)}), Sat::kSat);
}

TEST(SolverTest, UnboundedPivotIsSat) {
  Fixture f;
  const Expr* p = f.pool.pivot_field(0, 1);  // no declared domain
  EXPECT_EQ(f.check({f.pool.cmp(Op::kGt, p, f.pool.constant(1000000))}),
            Sat::kSat);
}

TEST(SolverTest, StatsAccumulate) {
  Fixture f;
  const Expr* x = f.var(0, 0, 10);
  f.check({f.pool.cmp(Op::kGt, x, f.pool.constant(5))});
  f.check({f.pool.cmp(Op::kGt, x, f.pool.constant(10))});
  EXPECT_EQ(f.solver.stats().queries, 2u);
  EXPECT_EQ(f.solver.stats().unsat, 1u);
}

// ---------------------------------------------------------------------------
// Property sweep: random small constraint systems vs. brute force.
// ---------------------------------------------------------------------------

class SolverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverPropertyTest, AgreesWithBruteForceOnSmallDomains) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  ExprPool pool;
  DomainMap domains;
  constexpr Value kLo = 0, kHi = 7;
  const Expr* x = pool.input(0);
  const Expr* y = pool.input(1);
  domains.declare(x, {kLo, kHi});
  domains.declare(y, {kLo, kHi});

  auto random_term = [&](auto&& self, int depth) -> const Expr* {
    if (depth == 0 || rng.percent(40)) {
      switch (rng.bounded(3)) {
        case 0:
          return x;
        case 1:
          return y;
        default:
          return pool.constant(rng.uniform(-3, 10));
      }
    }
    const Expr* a = self(self, depth - 1);
    const Expr* b = self(self, depth - 1);
    switch (rng.bounded(4)) {
      case 0:
        return pool.add(a, b);
      case 1:
        return pool.sub(a, b);
      case 2:
        return pool.mul(a, pool.constant(rng.uniform(-2, 3)));
      default:
        return pool.min(a, b);
    }
  };
  auto random_cmp = [&] {
    static constexpr Op kOps[] = {Op::kEq, Op::kNe, Op::kLt,
                                  Op::kLe, Op::kGt, Op::kGe};
    return pool.cmp(kOps[rng.bounded(6)], random_term(random_term, 2),
                    random_term(random_term, 2));
  };

  Solver solver;
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<const Expr*> cs;
    const int n = 1 + static_cast<int>(rng.bounded(3));
    for (int i = 0; i < n; ++i) cs.push_back(random_cmp());

    // Brute force ground truth over the 8x8 domain.
    bool truth = false;
    for (Value vx = kLo; vx <= kHi && !truth; ++vx) {
      for (Value vy = kLo; vy <= kHi && !truth; ++vy) {
        struct C final : expr::EvalContext {
          Value vx, vy;
          Value input(std::uint32_t s) const override {
            return s == 0 ? vx : vy;
          }
          Value input_elem(std::uint32_t, Value) const override { return 0; }
          Value pivot(std::uint32_t, FieldId) const override { return 0; }
        } ctx;
        ctx.vx = vx;
        ctx.vy = vy;
        bool all = true;
        for (const Expr* c : cs) all = all && expr::eval(c, ctx) != 0;
        truth = all;
      }
    }

    const Sat got = solver.check(cs, domains);
    if (truth) {
      // Soundness for pruning: a satisfiable system must never be kUnsat.
      EXPECT_NE(got, Sat::kUnsat) << "iter " << iter;
    } else {
      // An unsatisfiable system must never be declared kSat.
      EXPECT_NE(got, Sat::kSat) << "iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace prog::solver
