// Tests for the lock table and the deterministic execution engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "baselines/variants.hpp"
#include "common/rng.hpp"
#include "lang/builder.hpp"
#include "sched/engine.hpp"
#include "sym/symexec.hpp"

namespace prog::sched {
namespace {

using lang::Proc;
using lang::ProcBuilder;
using lang::TxInput;

constexpr TableId kAcct = 1;
constexpr TableId kCtr = 2;
constexpr TableId kLog = 3;
constexpr FieldId kBal = 0;
constexpr FieldId kNext = 0;
constexpr FieldId kVal = 1;

// --- lock table ---------------------------------------------------------------

TEST(LockTableTest, FifoGrantAndRelease) {
  LockTable lt;
  EXPECT_TRUE(lt.enqueue(1, {kAcct, 5}, true));
  EXPECT_FALSE(lt.enqueue(2, {kAcct, 5}, true));
  EXPECT_FALSE(lt.enqueue(3, {kAcct, 5}, true));
  EXPECT_EQ(lt.entry_count(), 3u);

  std::vector<TxIdx> granted;
  lt.release(1, {kAcct, 5}, granted);
  EXPECT_EQ(granted, std::vector<TxIdx>{2});
  granted.clear();
  lt.release(2, {kAcct, 5}, granted);
  EXPECT_EQ(granted, std::vector<TxIdx>{3});
  granted.clear();
  lt.release(3, {kAcct, 5}, granted);
  EXPECT_TRUE(granted.empty());
  EXPECT_TRUE(lt.empty());
}

TEST(LockTableTest, IndependentKeysIndependentQueues) {
  LockTable lt;
  EXPECT_TRUE(lt.enqueue(1, {kAcct, 5}, true));
  EXPECT_TRUE(lt.enqueue(2, {kAcct, 6}, true));
  EXPECT_TRUE(lt.enqueue(3, {kCtr, 5}, true));  // same key id, other table
}

TEST(LockTableTest, ReleaseErrorsAreDetected) {
  LockTable lt;
  std::vector<TxIdx> granted;
  EXPECT_THROW(lt.release(1, {kAcct, 5}, granted), InvariantError);
  lt.enqueue(1, {kAcct, 5}, true);
  lt.enqueue(2, {kAcct, 5}, true);
  // Releasing an ungranted entry is a protocol violation.
  EXPECT_THROW(lt.release(2, {kAcct, 5}, granted), InvariantError);
}

TEST(LockTableTest, ExclusiveModeSerializesReaders) {
  LockTable lt;  // default: exclusive
  EXPECT_TRUE(lt.enqueue(1, {kAcct, 5}, false));
  EXPECT_FALSE(lt.enqueue(2, {kAcct, 5}, false));
}

TEST(LockTableTest, SharedModeGrantsReaderPrefix) {
  LockTable lt(LockTable::Options{.shared_reads = true, .shards = 8});
  EXPECT_TRUE(lt.enqueue(1, {kAcct, 5}, false));
  EXPECT_TRUE(lt.enqueue(2, {kAcct, 5}, false));   // reader joins
  EXPECT_FALSE(lt.enqueue(3, {kAcct, 5}, true));   // writer waits
  EXPECT_FALSE(lt.enqueue(4, {kAcct, 5}, false));  // reader behind writer

  std::vector<TxIdx> granted;
  lt.release(2, {kAcct, 5}, granted);  // out-of-order reader release is fine
  EXPECT_TRUE(granted.empty());        // tx1 still holds the prefix
  lt.release(1, {kAcct, 5}, granted);
  EXPECT_EQ(granted, std::vector<TxIdx>{3});  // writer now at head
  granted.clear();
  lt.release(3, {kAcct, 5}, granted);
  EXPECT_EQ(granted, std::vector<TxIdx>{4});
}

TEST(LockTableTest, SharedModeWriterHeadBlocksAll) {
  LockTable lt(LockTable::Options{.shared_reads = true, .shards = 8});
  EXPECT_TRUE(lt.enqueue(1, {kAcct, 5}, true));
  EXPECT_FALSE(lt.enqueue(2, {kAcct, 5}, false));
  std::vector<TxIdx> granted;
  lt.release(1, {kAcct, 5}, granted);
  EXPECT_EQ(granted, std::vector<TxIdx>{2});
}

// --- engine fixtures ----------------------------------------------------------

/// Bundles procs + profiles + store + engine for a toy bank schema.
struct Bench {
  std::vector<std::unique_ptr<Proc>> procs;
  std::vector<std::unique_ptr<sym::TxProfile>> profiles;
  std::vector<ProcEntry> entries;
  store::VersionedStore store;

  ProcId add(Proc p) {
    procs.push_back(std::make_unique<Proc>(std::move(p)));
    profiles.push_back(sym::Profiler::profile(*procs.back()));
    entries.push_back({procs.back().get(), profiles.back().get()});
    return static_cast<ProcId>(entries.size() - 1);
  }

  void load_accounts(Value n, Value balance) {
    for (Value i = 0; i < n; ++i) {
      store.put({kAcct, static_cast<Key>(i)}, store::Row{{kBal, balance}}, 0);
    }
  }
  void load_counter(Value v) {
    store.put({kCtr, 0}, store::Row{{kNext, v}}, 0);
  }
};

Proc make_append() {
  // DT: reads the counter (pivot), writes a log row at that id, bumps it.
  ProcBuilder b("append");
  auto payload = b.param("payload", 0, 1000000);
  auto ctr = b.get(kCtr, b.lit(0));
  auto next = b.let("next", ctr.field(kNext));
  b.put(kLog, next, {{kVal, payload}});
  b.put(kCtr, b.lit(0), {{kNext, next + 1}});
  return std::move(b).build();
}

Proc make_read_balance() {
  ProcBuilder b("read_balance");
  auto acct = b.param("acct", 0, 999);
  auto h = b.get(kAcct, acct);
  b.emit(h.field(kBal));
  return std::move(b).build();
}

TxRequest req(ProcId p, std::initializer_list<Value> scalars) {
  TxRequest r;
  r.proc = p;
  for (Value v : scalars) r.input.add(v);
  return r;
}

Proc make_transfer_simple() {
  ProcBuilder b("transfer");
  auto from = b.param("from", 0, 999);
  auto to = b.param("to", 0, 999);
  auto amount = b.param("amount", 1, 100);
  auto src = b.get(kAcct, from);
  auto dst = b.get(kAcct, to);
  b.put(kAcct, from, {{kBal, src.field(kBal) - amount}});
  b.put(kAcct, to, {{kBal, dst.field(kBal) + amount}});
  return std::move(b).build();
}

TEST(EngineTest, NonConflictingTransactionsAllCommit) {
  Bench bench;
  const ProcId transfer = bench.add(make_transfer_simple());
  bench.load_accounts(10, 100);
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.check_containment = true;
  Engine engine(bench.store, bench.entries, cfg);

  std::vector<TxRequest> batch;
  batch.push_back(req(transfer, {0, 1, 10}));
  batch.push_back(req(transfer, {2, 3, 20}));
  batch.push_back(req(transfer, {4, 5, 30}));
  const BatchResult r = engine.run_batch(std::move(batch));
  EXPECT_EQ(r.committed, 3u);
  EXPECT_EQ(r.validation_aborts, 0u);
  EXPECT_EQ(bench.store.get({kAcct, 0})->at(kBal), 90);
  EXPECT_EQ(bench.store.get({kAcct, 1})->at(kBal), 110);
  EXPECT_EQ(bench.store.get({kAcct, 4})->at(kBal), 70);
  EXPECT_EQ(bench.store.get({kAcct, 5})->at(kBal), 130);
}

TEST(EngineTest, ConflictingTransactionsSerializeInAgreedOrder) {
  Bench bench;
  const ProcId transfer = bench.add(make_transfer_simple());
  bench.load_accounts(3, 100);
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.audit_commit_order = true;
  Engine engine(bench.store, bench.entries, cfg);

  // A chain of conflicts on account 1.
  std::vector<TxRequest> batch;
  batch.push_back(req(transfer, {0, 1, 10}));
  batch.push_back(req(transfer, {1, 2, 50}));
  batch.push_back(req(transfer, {2, 1, 5}));
  const BatchResult r = engine.run_batch(std::move(batch));
  EXPECT_EQ(r.committed, 3u);
  EXPECT_EQ(bench.store.get({kAcct, 0})->at(kBal), 90);
  EXPECT_EQ(bench.store.get({kAcct, 1})->at(kBal), 100 + 10 - 50 + 5);
  EXPECT_EQ(bench.store.get({kAcct, 2})->at(kBal), 100 + 50 - 5);
  // All ITs: the commit order must equal the agreed order.
  EXPECT_EQ(r.commit_order, (std::vector<TxIdx>{0, 1, 2}));
}

TEST(EngineTest, DependentTransactionFailsOnceThenSucceeds) {
  Bench bench;
  const ProcId append = bench.add(make_append());
  bench.load_counter(100);
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.check_containment = true;
  Engine engine(bench.store, bench.entries, cfg);

  // Two appends conflict on the counter; both predict slot 100 from the
  // prepare snapshot. The first commits; the second must abort and retry.
  std::vector<TxRequest> batch;
  batch.push_back(req(append, {7}));
  batch.push_back(req(append, {8}));
  const BatchResult r = engine.run_batch(std::move(batch));
  EXPECT_EQ(r.committed, 2u);
  EXPECT_EQ(r.validation_aborts, 1u);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(bench.store.get({kCtr, 0})->at(kNext), 102);
  ASSERT_NE(bench.store.get({kLog, 100}), nullptr);
  ASSERT_NE(bench.store.get({kLog, 101}), nullptr);
  EXPECT_EQ(bench.store.get({kLog, 100})->at(kVal), 7);
  EXPECT_EQ(bench.store.get({kLog, 101})->at(kVal), 8);
}

TEST(EngineTest, SingleFailedModeAlsoConverges) {
  Bench bench;
  const ProcId append = bench.add(make_append());
  bench.load_counter(0);
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.parallel_failed = false;  // SF
  Engine engine(bench.store, bench.entries, cfg);

  std::vector<TxRequest> batch;
  for (Value i = 0; i < 6; ++i) batch.push_back(req(append, {i}));
  const BatchResult r = engine.run_batch(std::move(batch));
  EXPECT_EQ(r.committed, 6u);
  EXPECT_EQ(r.rounds, 1u);  // SF clears everything in one pass
  EXPECT_EQ(bench.store.get({kCtr, 0})->at(kNext), 6);
  for (Value i = 0; i < 6; ++i) {
    EXPECT_EQ(bench.store.get({kLog, static_cast<Key>(i)})->at(kVal), i);
  }
}

TEST(EngineTest, ReadOnlyTransactionsSeePreviousBatch) {
  Bench bench;
  const ProcId transfer = bench.add(make_transfer_simple());
  const ProcId reader = bench.add(make_read_balance());
  bench.load_accounts(2, 100);
  EngineConfig cfg;
  cfg.workers = 2;
  Engine engine(bench.store, bench.entries, cfg);

  std::vector<TxRequest> batch;
  batch.push_back(req(transfer, {0, 1, 10}));
  batch.push_back(req(reader, {0}));
  const BatchResult r = engine.run_batch(std::move(batch));
  // Both commit; the ROT ran against the pre-batch snapshot (no way to
  // observe its emitted value here, but it must not deadlock or lock).
  EXPECT_EQ(r.committed, 2u);
  EXPECT_EQ(bench.store.get({kAcct, 0})->at(kBal), 90);
}

TEST(EngineTest, EmptyAndRotOnlyBatches) {
  Bench bench;
  const ProcId reader = bench.add(make_read_balance());
  bench.load_accounts(2, 100);
  EngineConfig cfg;
  cfg.workers = 2;
  Engine engine(bench.store, bench.entries, cfg);
  EXPECT_EQ(engine.run_batch({}).committed, 0u);
  std::vector<TxRequest> batch;
  batch.push_back(req(reader, {0}));
  batch.push_back(req(reader, {1}));
  EXPECT_EQ(engine.run_batch(std::move(batch)).committed, 2u);
}

TEST(EngineTest, CalvinDefersFailedTransactions) {
  Bench bench;
  const ProcId append = bench.add(make_append());
  bench.load_counter(0);
  EngineConfig cfg = baselines::calvin(100, 2).config;
  Engine engine(bench.store, bench.entries, cfg);

  std::vector<TxRequest> b1;
  b1.push_back(req(append, {1}));
  b1.push_back(req(append, {2}));
  BatchResult r1 = engine.run_batch(std::move(b1));
  EXPECT_EQ(r1.committed, 1u);
  ASSERT_EQ(r1.deferred.size(), 1u);
  EXPECT_EQ(bench.store.get({kCtr, 0})->at(kNext), 1);

  // The deferred request is marked for fresh reconnaissance (OLLP re-runs
  // the recon phase after an abort), so resubmission converges quickly.
  EXPECT_TRUE(r1.deferred[0].recon_fresh);
  std::vector<TxRequest> pending = std::move(r1.deferred);
  int resubmissions = 0;
  while (!pending.empty()) {
    ASSERT_LT(resubmissions, 20) << "Calvin resubmission never converged";
    ++resubmissions;
    BatchResult r = engine.run_batch(std::move(pending));
    pending = std::move(r.deferred);
  }
  EXPECT_EQ(resubmissions, 1);
  EXPECT_EQ(bench.store.get({kCtr, 0})->at(kNext), 2);
}

TEST(EngineTest, NodoNeverAbortsAndMatchesSeq) {
  // Run the same workload under NODO and SEQ: table-granular locking cannot
  // abort and must produce the agreed-order state.
  Rng rng(11);
  auto run = [&](EngineConfig cfg) {
    Bench bench;
    const ProcId transfer = bench.add(make_transfer_simple());
    const ProcId append = bench.add(make_append());
    bench.load_accounts(10, 1000);
    bench.load_counter(0);
    Engine engine(bench.store, bench.entries, cfg);
    Rng local(99);
    for (int batch = 0; batch < 5; ++batch) {
      std::vector<TxRequest> reqs;
      for (int i = 0; i < 20; ++i) {
        if (local.percent(50)) {
          reqs.push_back(req(transfer, {local.uniform(0, 9),
                                        local.uniform(0, 9),
                                        local.uniform(1, 10)}));
        } else {
          reqs.push_back(req(append, {local.uniform(0, 100)}));
        }
      }
      const BatchResult r = engine.run_batch(std::move(reqs));
      EXPECT_EQ(r.validation_aborts, 0u);
    }
    return bench.store.state_hash();
  };
  const auto nodo_hash = run(baselines::nodo(4).config);
  const auto seq_hash = run(baselines::seq().config);
  EXPECT_EQ(nodo_hash, seq_hash);
}

TEST(EngineTest, SharedReadLocksPreserveState) {
  auto run = [&](bool shared) {
    Bench bench;
    const ProcId transfer = bench.add(make_transfer_simple());
    bench.load_accounts(6, 100);
    EngineConfig cfg;
    cfg.workers = 4;
    cfg.shared_read_locks = shared;
    Engine engine(bench.store, bench.entries, cfg);
    std::vector<TxRequest> batch;
    batch.push_back(req(transfer, {0, 1, 10}));
    batch.push_back(req(transfer, {0, 2, 10}));
    batch.push_back(req(transfer, {0, 3, 10}));
    engine.run_batch(std::move(batch));
    return bench.store.state_hash();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Determinism sweep: same workload, different parallelism/variants -> same
// final state, across multiple batches with dependent transactions.
// ---------------------------------------------------------------------------

struct VariantParam {
  unsigned workers;
  bool multi_queue;
  bool parallel_failed;
  bool dt_before_it;
};

class DeterminismTest : public ::testing::TestWithParam<VariantParam> {};

std::uint64_t run_workload(const VariantParam& vp, bool audit_and_check) {
  Bench bench;
  const ProcId transfer = bench.add(make_transfer_simple());
  const ProcId append = bench.add(make_append());
  const ProcId reader = bench.add(make_read_balance());
  bench.load_accounts(20, 1000);
  bench.load_counter(0);

  EngineConfig cfg;
  cfg.workers = vp.workers;
  cfg.multi_queue_prepare = vp.multi_queue;
  cfg.parallel_failed = vp.parallel_failed;
  cfg.dt_before_it = vp.dt_before_it;
  cfg.check_containment = audit_and_check;
  Engine engine(bench.store, bench.entries, cfg);

  Rng rng(1234);  // identical workload across every variant
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<TxRequest> reqs;
    for (int i = 0; i < 30; ++i) {
      switch (rng.bounded(3)) {
        case 0:
          reqs.push_back(req(transfer, {rng.uniform(0, 19),
                                        rng.uniform(0, 19),
                                        rng.uniform(1, 10)}));
          break;
        case 1:
          reqs.push_back(req(append, {rng.uniform(0, 100)}));
          break;
        default:
          reqs.push_back(req(reader, {rng.uniform(0, 19)}));
          break;
      }
    }
    engine.run_batch(std::move(reqs));
  }
  return bench.store.state_hash();
}

TEST_P(DeterminismTest, StateHashIndependentOfParallelism) {
  const VariantParam vp = GetParam();
  const std::uint64_t h = run_workload(vp, true);
  // Reference: same variant flags, single worker.
  VariantParam ref = vp;
  ref.workers = 1;
  EXPECT_EQ(h, run_workload(ref, false));
  // And repeated runs are stable.
  EXPECT_EQ(h, run_workload(vp, false));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DeterminismTest,
    ::testing::Values(VariantParam{4, true, true, true},
                      VariantParam{4, true, false, true},
                      VariantParam{4, false, true, true},
                      VariantParam{4, false, false, true},
                      VariantParam{8, true, true, true},
                      VariantParam{8, true, true, false},
                      VariantParam{2, false, false, false}));

TEST(DeterminismTest, SfAndMfAgreeOnFinalState) {
  EXPECT_EQ(run_workload({4, true, true, true}, false),
            run_workload({4, true, false, true}, false));
}

// Serializability audit: replaying committed transactions serially in the
// recorded commit order over the same initial state reproduces the state.
TEST(EngineTest, CommitOrderReplayReproducesState) {
  Bench bench;
  const ProcId transfer = bench.add(make_transfer_simple());
  const ProcId append = bench.add(make_append());
  bench.load_accounts(10, 500);
  bench.load_counter(0);

  EngineConfig cfg;
  cfg.workers = 4;
  cfg.audit_commit_order = true;
  Engine engine(bench.store, bench.entries, cfg);

  Rng rng(7);
  std::vector<TxRequest> reqs;
  for (int i = 0; i < 40; ++i) {
    if (rng.percent(60)) {
      reqs.push_back(req(transfer, {rng.uniform(0, 9), rng.uniform(0, 9),
                                    rng.uniform(1, 10)}));
    } else {
      reqs.push_back(req(append, {rng.uniform(0, 100)}));
    }
  }
  const std::vector<TxRequest> reqs_copy = reqs;
  const BatchResult r = engine.run_batch(std::move(reqs));
  ASSERT_EQ(r.commit_order.size(), r.committed);

  // Replay on a fresh store.
  Bench replay;
  const ProcId t2 = replay.add(make_transfer_simple());
  const ProcId a2 = replay.add(make_append());
  (void)t2;
  (void)a2;
  replay.load_accounts(10, 500);
  replay.load_counter(0);
  lang::Interp interp;
  for (TxIdx idx : r.commit_order) {
    const TxRequest& rq = reqs_copy[idx];
    store::LiveView live(replay.store);
    const lang::ExecResult er =
        interp.run(*replay.procs[rq.proc], rq.input, live);
    if (er.committed) lang::apply_writes(replay.store, er, 1);
  }
  EXPECT_EQ(bench.store.state_hash(), replay.store.state_hash());
}

}  // namespace
}  // namespace prog::sched
