// Tests for the DSL pretty-printer.
#include <gtest/gtest.h>

#include "lang/builder.hpp"
#include "lang/printer.hpp"
#include "workloads/tpcc.hpp"

namespace prog::lang {
namespace {

TEST(PrinterTest, SimpleProc) {
  ProcBuilder b("pay");
  auto k = b.param("k", 0, 99);
  auto amt = b.param("amt", 1, 100);
  auto h = b.get(1, k);
  b.put(1, k, {{0, h.field(0) + amt}});
  const Proc p = std::move(b).build();
  const std::string s = to_string(p);
  EXPECT_NE(s.find("proc pay(k in [0, 99], amt in [1, 100])"),
            std::string::npos);
  EXPECT_NE(s.find("GET(t1, k)"), std::string::npos);
  EXPECT_NE(s.find("PUT(t1, k, {f0: "), std::string::npos);
  EXPECT_NE(s.find(" + amt)"), std::string::npos);
}

TEST(PrinterTest, ControlFlowAndArrays) {
  ProcBuilder b("ctl");
  auto n = b.param("n", 1, 5);
  auto ids = b.param_array("ids", 5, 0, 9);
  b.for_(b.lit(0), n, 5, [&](ProcBuilder& body, Val i) {
    body.if_(
        ids[i] > 3,
        [&](ProcBuilder& t) { t.put(2, ids[i], {{0, t.lit(1)}}); },
        [&](ProcBuilder& e) { e.del(2, ids[i]); });
  });
  b.abort_if(n == 5);
  b.emit(n);
  const Proc p = std::move(b).build();
  const std::string s = to_string(p);
  EXPECT_NE(s.find("ids[5] in [0, 9]"), std::string::npos);
  EXPECT_NE(s.find("for "), std::string::npos);
  EXPECT_NE(s.find("max 5 {"), std::string::npos);
  EXPECT_NE(s.find("if (ids["), std::string::npos);
  EXPECT_NE(s.find("} else {"), std::string::npos);
  EXPECT_NE(s.find("DEL(t2, "), std::string::npos);
  EXPECT_NE(s.find("abort_if (n == 5)"), std::string::npos);
  EXPECT_NE(s.find("emit n"), std::string::npos);
}

TEST(PrinterTest, ExistsAndMinMax) {
  ProcBuilder b("probe");
  auto k = b.param("k", 0, 9);
  auto h = b.get(1, k);
  b.emit(h.exists());
  b.emit(b.max(k, b.lit(3)));
  const Proc p = std::move(b).build();
  const std::string s = to_string(p);
  EXPECT_NE(s.find(".exists"), std::string::npos);
  EXPECT_NE(s.find("max(k, 3)"), std::string::npos);
}

TEST(PrinterTest, TpccProceduresRenderWithoutThrowing) {
  const auto sc = workloads::tpcc::Scale::tiny(2);
  for (const Proc& p :
       {workloads::tpcc::build_new_order(sc), workloads::tpcc::build_payment(sc),
        workloads::tpcc::build_delivery(sc),
        workloads::tpcc::build_order_status(sc),
        workloads::tpcc::build_stock_level(sc)}) {
    const std::string s = to_string(p);
    EXPECT_GT(s.size(), 100u) << p.name;
    EXPECT_NE(s.find(p.name), std::string::npos);
  }
}

TEST(PrinterTest, ExprToString) {
  ProcBuilder b("e");
  auto x = b.param("x", 0, 9);
  auto sum = x + 2;
  const Proc p = std::move(b).build();
  EXPECT_EQ(expr_to_string(p, sum.id()), "(x + 2)");
}

}  // namespace
}  // namespace prog::lang
