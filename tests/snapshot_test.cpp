// Snapshot-consistency tests: read-only transactions execute lock-free, so
// the design hinges on them observing a *consistent* snapshot (the state
// left by the previous batch) regardless of what update transactions do
// concurrently. These tests verify that end to end through output capture,
// plus the store-cloning API used for replica bootstrap.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "lang/builder.hpp"

namespace prog {
namespace {

constexpr TableId kAcct = 1;
constexpr FieldId kBal = 0;
constexpr Value kAccounts = 40;
constexpr Value kTotal = kAccounts * 100;

lang::Proc make_transfer() {
  lang::ProcBuilder b("transfer");
  auto from = b.param("from", 0, kAccounts - 1);
  auto to = b.param("to", 0, kAccounts - 1);
  auto amount = b.param("amount", 1, 50);
  auto src = b.get(kAcct, from);
  auto dst = b.get(kAcct, to);
  b.abort_if(from == to);  // self-transfers would double-count
  b.put(kAcct, from, {{kBal, src.field(kBal) - amount}});
  b.put(kAcct, to, {{kBal, dst.field(kBal) + amount}});
  return std::move(b).build();
}

/// ROT that sums every account — any torn read breaks the constant total.
lang::Proc make_sum_all() {
  lang::ProcBuilder b("sum_all");
  auto lo = b.param("lo", 0, 0);
  auto acc = b.let("acc", b.lit(0));
  b.for_(lo, b.lit(kAccounts), kAccounts,
         [&](lang::ProcBuilder& body, lang::Val i) {
           auto h = body.get(kAcct, i);
           body.assign(acc, acc + h.field(kBal));
         });
  b.emit(acc);
  return std::move(b).build();
}

TEST(SnapshotTest, RotsAlwaysSeeTheInvariantTotal) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  cfg.capture_outputs = true;
  db::Database db(cfg);
  const auto transfer = db.register_procedure(make_transfer());
  const auto sum_all = db.register_procedure(make_sum_all());
  for (Value a = 0; a < kAccounts; ++a) {
    db.store().put({kAcct, static_cast<Key>(a)}, store::Row{{kBal, 100}}, 0);
  }
  db.finalize();

  Rng rng(17);
  int sums_checked = 0;
  for (int batch = 0; batch < 12; ++batch) {
    std::vector<sched::TxRequest> reqs;
    std::vector<std::size_t> rot_slots;
    for (int i = 0; i < 30; ++i) {
      sched::TxRequest r;
      if (i % 5 == 0) {
        r.proc = sum_all;
        r.input.add(0);
        rot_slots.push_back(reqs.size());
      } else {
        r.proc = transfer;
        r.input.add(rng.uniform(0, kAccounts - 1))
            .add(rng.uniform(0, kAccounts - 1))
            .add(rng.uniform(1, 50));
      }
      reqs.push_back(std::move(r));
    }
    const auto result = db.execute(std::move(reqs));
    for (const auto& [idx, emitted] : result.outputs) {
      if (std::find(rot_slots.begin(), rot_slots.end(), idx) !=
          rot_slots.end()) {
        ASSERT_EQ(emitted.size(), 1u);
        // Lock-free ROTs must see the previous batch's consistent total —
        // never a torn mid-batch state.
        EXPECT_EQ(emitted[0], kTotal) << "batch " << batch;
        ++sums_checked;
      }
    }
  }
  EXPECT_EQ(sums_checked, 12 * 6);
}

TEST(SnapshotTest, OutputsAreDeterministic) {
  auto run = [](unsigned workers) {
    sched::EngineConfig cfg;
    cfg.workers = workers;
    cfg.capture_outputs = true;
    db::Database db(cfg);
    const auto transfer = db.register_procedure(make_transfer());
    const auto sum_all = db.register_procedure(make_sum_all());
    for (Value a = 0; a < kAccounts; ++a) {
      db.store().put({kAcct, static_cast<Key>(a)}, store::Row{{kBal, 100}},
                     0);
    }
    db.finalize();
    Rng rng(5);
    std::vector<std::pair<sched::TxIdx, std::vector<Value>>> all;
    for (int b = 0; b < 6; ++b) {
      std::vector<sched::TxRequest> reqs;
      for (int i = 0; i < 20; ++i) {
        sched::TxRequest r;
        if (i % 4 == 0) {
          r.proc = sum_all;
          r.input.add(0);
        } else {
          r.proc = transfer;
          r.input.add(rng.uniform(0, kAccounts - 1))
              .add(rng.uniform(0, kAccounts - 1))
              .add(rng.uniform(1, 50));
        }
        reqs.push_back(std::move(r));
      }
      auto result = db.execute(std::move(reqs));
      for (auto& o : result.outputs) all.push_back(std::move(o));
    }
    return all;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(SnapshotTest, CloneVisibleMatchesSource) {
  store::VersionedStore src;
  Rng rng(9);
  for (Key k = 0; k < 500; ++k) {
    src.put({kAcct, k}, store::Row{{kBal, rng.uniform(0, 1000)}}, 0);
  }
  src.put({kAcct, 5}, store::Row{{kBal, 42}}, 1);
  src.del({kAcct, 6}, 1);

  store::VersionedStore at0, latest;
  src.clone_visible_into(at0, 0);
  src.clone_visible_into(latest);
  EXPECT_EQ(at0.state_hash(), src.state_hash(0));
  EXPECT_EQ(latest.state_hash(), src.state_hash());
  EXPECT_NE(at0.state_hash(), latest.state_hash());
  EXPECT_EQ(latest.get({kAcct, 6}), nullptr);  // tombstone not cloned
  EXPECT_EQ(latest.get({kAcct, 5})->at(kBal), 42);

  // Clones are independent: mutating one never affects the other.
  latest.put({kAcct, 7}, store::Row{{kBal, -1}}, 1);
  EXPECT_NE(src.get({kAcct, 7})->at(kBal), -1);
}

TEST(SnapshotTest, CloneRequiresEmptyDestination) {
  store::VersionedStore src, dst;
  src.put({kAcct, 1}, store::Row{{kBal, 1}}, 0);
  dst.put({kAcct, 2}, store::Row{{kBal, 2}}, 0);
  EXPECT_THROW(src.clone_visible_into(dst), InvariantError);
}

}  // namespace
}  // namespace prog
