// Fine-grained TPC-C semantics: business-logic correctness of each
// transaction, observed through output capture and direct store inspection.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "workloads/tpcc.hpp"

namespace prog::workloads::tpcc {
namespace {

struct Fixture {
  db::Database db;
  std::unique_ptr<Workload> wl;
  Scale sc = Scale::tiny(2);

  Fixture() : db(make_config()) {
    wl = std::make_unique<Workload>(db, sc);
  }

  static sched::EngineConfig make_config() {
    sched::EngineConfig cfg;
    cfg.workers = 2;
    cfg.capture_outputs = true;
    cfg.check_containment = true;
    return cfg;
  }

  sched::TxRequest new_order_req(Value w, Value d, Value c,
                                 std::vector<Value> items,
                                 Value invalid_marker = -1) {
    sched::TxRequest r;
    r.proc = wl->new_order();
    const auto ol_cnt = static_cast<Value>(items.size());
    r.input.add(w).add(d).add(c).add(ol_cnt);
    items.resize(kMaxLines, 0);
    if (invalid_marker >= 0) {
      items[static_cast<std::size_t>(ol_cnt - 1)] = sc.items;  // invalid id
    }
    r.input.add_array(items);
    r.input.add_array(std::vector<Value>(kMaxLines, w));
    r.input.add_array(std::vector<Value>(kMaxLines, 5));
    return r;
  }

  sched::TxRequest payment_req(Value w, Value d, Value c, Value amount,
                               Value h_id) {
    sched::TxRequest r;
    r.proc = wl->payment();
    r.input.add(w).add(d).add(c).add(amount).add(h_id);
    return r;
  }

  sched::TxRequest delivery_req(Value w) {
    sched::TxRequest r;
    r.proc = wl->delivery();
    r.input.add(w).add(3);
    return r;
  }

  store::RowPtr row(TableId t, std::int64_t key) {
    return db.store().get({t, static_cast<Key>(key)});
  }
};

TEST(TpccDetailTest, NewOrderCreatesOrderRowsAndAdvancesSequence) {
  Fixture f;
  const std::int64_t dk = district_key(1, 4);
  const Value next_before = f.row(kDistrict, dk)->at(kNextOid);

  auto result = f.db.execute({f.new_order_req(1, 4, 7, {3, 9, 14})});
  ASSERT_EQ(result.committed, 1u);
  ASSERT_EQ(result.outputs.size(), 1u);
  const Value o_id = result.outputs[0].second.at(0);
  EXPECT_EQ(o_id, next_before);

  EXPECT_EQ(f.row(kDistrict, dk)->at(kNextOid), next_before + 1);
  const std::int64_t okey = order_key(dk, o_id);
  ASSERT_NE(f.row(kOrder, okey), nullptr);
  EXPECT_EQ(f.row(kOrder, okey)->at(kOCid), 7);
  EXPECT_EQ(f.row(kOrder, okey)->at(kOlCnt), 3);
  EXPECT_EQ(f.row(kOrder, okey)->at(kCarrier), 0);  // undelivered
  ASSERT_NE(f.row(kNewOrder, okey), nullptr);       // pending marker
  for (std::int64_t l = 0; l < 3; ++l) {
    const store::RowPtr line = f.row(kOrderLine, order_line_key(okey, l));
    ASSERT_NE(line, nullptr) << l;
    EXPECT_EQ(line->at(kOlQuantity), 5);
  }
  EXPECT_EQ(f.row(kOrderLine, order_line_key(okey, 3)), nullptr);
}

TEST(TpccDetailTest, NewOrderUpdatesStock) {
  Fixture f;
  const std::int64_t sk = stock_key(f.sc, 0, 42);
  const Value qty_before = f.row(kStock, sk)->at(kQuantity);
  f.db.execute({f.new_order_req(0, 0, 0, {42, 42, 42})});
  const store::RowPtr st = f.row(kStock, sk);
  // Quantity decremented by 5 per line (possibly +91 refills; here stock is
  // large so no refill) and order count bumped per line.
  EXPECT_EQ(st->at(kQuantity), qty_before - 15);
  EXPECT_EQ(st->at(kOrderCnt), 3);
  EXPECT_EQ(st->at(kStockYtd), 15);
}

TEST(TpccDetailTest, InvalidItemRollsBackEverything) {
  Fixture f;
  const std::int64_t dk = district_key(0, 2);
  const auto hash_before = f.db.store().state_hash();
  const Value next_before = f.row(kDistrict, dk)->at(kNextOid);

  auto result =
      f.db.execute({f.new_order_req(0, 2, 5, {1, 2, 3}, /*invalid=*/1)});
  EXPECT_EQ(result.committed, 1u);
  EXPECT_EQ(result.rolled_back, 1u);
  // A rolled-back transaction leaves no trace at all.
  EXPECT_EQ(f.row(kDistrict, dk)->at(kNextOid), next_before);
  EXPECT_EQ(f.db.store().state_hash(), hash_before);
}

TEST(TpccDetailTest, PaymentMovesMoneyEverywhere) {
  Fixture f;
  const std::int64_t dk = district_key(1, 0);
  const std::int64_t ck = customer_key(f.sc, 1, 0, 3);
  f.db.execute({f.payment_req(1, 0, 3, 250, 9001)});
  EXPECT_EQ(f.row(kWarehouseYtd, 1)->at(kYtd), 250);
  EXPECT_EQ(f.row(kDistrictYtd, dk)->at(kYtd), 250);
  EXPECT_EQ(f.row(kCustomerBal, ck)->at(kBalance), -250);
  EXPECT_EQ(f.row(kCustomerBal, ck)->at(kPaymentCnt), 1);
  ASSERT_NE(f.row(kHistory, 9001), nullptr);
  EXPECT_EQ(f.row(kHistory, 9001)->at(kHAmount), 250);
}

TEST(TpccDetailTest, DeliveryProcessesOldestPendingOrderPerDistrict) {
  Fixture f;
  const std::int64_t dk = district_key(0, 0);
  const Value last_before = f.row(kDelivPtr, dk)->at(kPresent);
  const std::int64_t okey = order_key(dk, last_before + 1);
  ASSERT_NE(f.row(kNewOrder, okey), nullptr);  // loader left it pending
  const Value c = f.row(kOrder, okey)->at(kOCid);
  const Value amount = f.row(kOrder, okey)->at(kAmount);
  const std::int64_t ck = customer_key(f.sc, 0, 0, c);
  const Value bal_before = f.row(kCustomerBal, ck)->at(kBalance);

  f.db.execute({f.delivery_req(0)});

  EXPECT_EQ(f.row(kDelivPtr, dk)->at(kPresent), last_before + 1);
  EXPECT_EQ(f.row(kNewOrder, okey), nullptr);        // marker consumed
  EXPECT_EQ(f.row(kOrder, okey)->at(kCarrier), 3);   // carrier stamped
  EXPECT_EQ(f.row(kCustomerBal, ck)->at(kBalance), bal_before + amount);
  EXPECT_EQ(f.row(kCustomerBal, ck)->at(kDeliveryCnt), 1);
}

TEST(TpccDetailTest, DeliveryOnDrainedDistrictIsANoOp) {
  Fixture f;
  // Drain district 0 of warehouse 0 (10 pending orders -> 10 deliveries).
  for (int i = 0; i < 10; ++i) f.db.execute({f.delivery_req(0)});
  const std::int64_t dk = district_key(0, 0);
  const Value last = f.row(kDelivPtr, dk)->at(kPresent);
  EXPECT_EQ(last, f.row(kDistrict, dk)->at(kNextOid) - 1);  // fully caught up

  const auto hash_before = f.db.store().state_hash();
  f.db.execute({f.delivery_req(0)});  // nothing left to deliver
  EXPECT_EQ(f.row(kDelivPtr, dk)->at(kPresent), last);
  EXPECT_EQ(f.db.store().state_hash(), hash_before);
}

TEST(TpccDetailTest, DeliveryThenNewOrderInterlocksCorrectly) {
  Fixture f;
  // Drain a district, then add a new order and deliver it: the marker chain
  // must stay exact.
  for (int i = 0; i < 10; ++i) f.db.execute({f.delivery_req(1)});
  auto result = f.db.execute({f.new_order_req(1, 0, 2, {5, 6})});
  const Value o_id = result.outputs[0].second.at(0);
  f.db.execute({f.delivery_req(1)});
  const std::int64_t dk = district_key(1, 0);
  EXPECT_EQ(f.row(kDelivPtr, dk)->at(kPresent), o_id);
  EXPECT_EQ(f.row(kNewOrder, order_key(dk, o_id)), nullptr);
  const auto bad = check_invariants(f.db.store(), f.sc);
  EXPECT_TRUE(bad.empty()) << (bad.empty() ? "" : bad.front());
}

TEST(TpccDetailTest, OrderStatusFindsCustomersLatestOrder) {
  Fixture f;
  auto no = f.db.execute({f.new_order_req(0, 1, 9, {11, 12})});
  const Value o_id = no.outputs[0].second.at(0);

  sched::TxRequest r;
  r.proc = f.wl->order_status();
  r.input.add(0).add(1).add(9);
  auto result = f.db.execute({r});
  ASSERT_EQ(result.outputs.size(), 1u);
  const auto& out = result.outputs[0].second;
  // Output: balance, then (oid, amount, carrier) triples for matches; our
  // fresh order must be among them (scan covers the last 20 orders).
  bool found = false;
  for (std::size_t i = 1; i < out.size(); i += 3) {
    if (out[i] == o_id) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TpccDetailTest, StockLevelCountsLowStockLines) {
  Fixture f;
  sched::TxRequest r;
  r.proc = f.wl->stock_level();
  r.input.add(0).add(0).add(20);
  auto result = f.db.execute({r});
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].second.at(0), 0);  // loader stock is 500

  // Drive item 77's stock down to exactly 10 (just below the threshold):
  // each line takes 5; the refill branch triggers only below 15, so 98
  // lines land on 500 - 98*5 = 10.
  for (int i = 0; i < 24; ++i) {
    f.db.execute({f.new_order_req(0, 0, 1, {77, 77, 77, 77})});
  }
  f.db.execute({f.new_order_req(0, 0, 1, {77, 77})});
  ASSERT_EQ(f.row(kStock, stock_key(f.sc, 0, 77))->at(kQuantity), 10);

  sched::TxRequest r2;
  r2.proc = f.wl->stock_level();
  r2.input.add(0).add(0).add(20);
  auto result2 = f.db.execute({r2});
  // Item 77's lines dominate the last 20 orders and its stock is below 20.
  EXPECT_GT(result2.outputs[0].second.at(0), 0);
}

}  // namespace
}  // namespace prog::workloads::tpcc
