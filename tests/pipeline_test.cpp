// Cross-batch pipelined replica apply (DESIGN.md §14).
//
// Layers:
//   - PipelineEquivalence: the load-bearing determinism proof. The staged
//     prepare_batch/execute_prepared path with double-buffered lock-table
//     banks (pipeline_depth = 2) must produce byte-identical per-batch state
//     hashes, identical batch results, and identical deterministic engine
//     counters to the legacy serial run_batch path (depth 0) — on TPC-C,
//     RUBiS and the hot catalog across 1/2/8 workers;
//   - durable cluster equivalence: a 3-replica durable ReplicatedDb at
//     depth 2 (async commit queues, watermark-gated acks) converges to the
//     same state hashes and counter snapshots as the depth-0 cluster, its
//     span stream passes the validator, and the trace carries pipeline
//     overlap witnesses (prepare(N) stamped before fsync(N-1));
//   - ack durability: a replica killed between agreement and fsync (queue
//     paused, then crash + power fail) must not lose any acked transaction —
//     acks gate on a quorum of durable watermarks, not on agreement.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "consensus/replicated_db.hpp"
#include "db/database.hpp"
#include "dur/fault_vfs.hpp"
#include "obs/tracing/tracing.hpp"
#include "obs/tracing/validator.hpp"
#include "workloads/microbench.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

namespace prog {
namespace {

using obs::tracing::FlightRecorder;
using obs::tracing::SpanEvent;
using obs::tracing::SpanKind;

struct RecorderGuard {
  RecorderGuard() {
    FlightRecorder::Options opts;
    opts.lane_capacity = 1 << 14;
    FlightRecorder::instance().enable(opts);
  }
  ~RecorderGuard() {
    FlightRecorder::instance().set_dump_handler(nullptr);
    FlightRecorder::instance().disable();
  }
};

void expect_stats_equal(const sched::EngineStats& a,
                        const sched::EngineStats& b, const char* what) {
  EXPECT_EQ(a.batches, b.batches) << what;
  EXPECT_EQ(a.committed, b.committed) << what;
  EXPECT_EQ(a.rolled_back, b.rolled_back) << what;
  EXPECT_EQ(a.validation_aborts, b.validation_aborts) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.mf_fallback_txns, b.mf_fallback_txns) << what;
  EXPECT_EQ(a.mf_fallback_batches, b.mf_fallback_batches) << what;
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(a.committed_by_class[c], b.committed_by_class[c]) << what;
    EXPECT_EQ(a.rolled_back_by_class[c], b.rolled_back_by_class[c]) << what;
    EXPECT_EQ(a.validation_aborts_by_class[c], b.validation_aborts_by_class[c])
        << what;
  }
}

/// Runs `rounds` identical batches through a serial (depth 0, run_batch)
/// database and a pipelined (depth 2, prepare_batch + execute_prepared)
/// database and asserts byte-identical evolution: per-batch state hash,
/// per-batch result counts, and the full deterministic counter block.
template <typename MakeWorkload, typename MakeBatch>
void run_equivalence(unsigned workers, MakeWorkload make_workload,
                     MakeBatch make_batch, int rounds, const char* what) {
  sched::EngineConfig serial_cfg;
  serial_cfg.workers = workers;
  sched::EngineConfig piped_cfg = serial_cfg;
  piped_cfg.pipeline_depth = 2;

  db::Database serial(serial_cfg);
  auto serial_wl = make_workload(serial);
  db::Database piped(piped_cfg);
  auto piped_wl = make_workload(piped);
  ASSERT_EQ(serial.state_hash(), piped.state_hash()) << what;

  Rng rng_a(4242), rng_b(4242);
  for (int i = 0; i < rounds; ++i) {
    const auto batch = make_batch(*serial_wl, rng_a);
    const auto batch_copy = make_batch(*piped_wl, rng_b);
    const sched::BatchResult sr = serial.execute(batch);
    piped.prepare_batch(batch_copy);
    ASSERT_TRUE(piped.engine().has_prepared());
    const sched::BatchResult pr = piped.execute_prepared();
    EXPECT_FALSE(piped.engine().has_prepared());
    EXPECT_EQ(sr.committed, pr.committed) << what << " batch " << i;
    EXPECT_EQ(sr.rolled_back, pr.rolled_back) << what << " batch " << i;
    EXPECT_EQ(sr.validation_aborts, pr.validation_aborts)
        << what << " batch " << i;
    EXPECT_EQ(sr.sf_fallbacks, pr.sf_fallbacks) << what << " batch " << i;
    ASSERT_EQ(serial.state_hash(), piped.state_hash())
        << what << " diverged at batch " << i;
  }
  expect_stats_equal(serial.engine_stats(), piped.engine_stats(), what);
}

class PipelineEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineEquivalenceTest, TpccByteIdenticalToSerial) {
  const unsigned workers = GetParam();
  run_equivalence(
      workers,
      [](db::Database& d) {
        return std::make_unique<workloads::tpcc::Workload>(
            d, workloads::tpcc::Scale::tiny(1));
      },
      [](const workloads::tpcc::Workload& wl, Rng& rng) {
        return wl.batch(24, rng);
      },
      10, "tpcc");
}

TEST_P(PipelineEquivalenceTest, RubisByteIdenticalToSerial) {
  const unsigned workers = GetParam();
  run_equivalence(
      workers,
      [](db::Database& d) {
        return std::make_unique<workloads::rubis::Workload>(
            d, workloads::rubis::Scale::small());
      },
      [](const workloads::rubis::Workload& wl, Rng& rng) {
        return wl.batch(24, rng);
      },
      10, "rubis");
}

TEST_P(PipelineEquivalenceTest, CatalogByteIdenticalToSerial) {
  const unsigned workers = GetParam();
  workloads::micro::CatalogOptions wopts;
  wopts.catalog_keys = 100;
  wopts.accounts = 300;
  wopts.reads_per_tx = 4;
  run_equivalence(
      workers,
      [wopts](db::Database& d) {
        return std::make_unique<workloads::micro::CatalogWorkload>(d, wopts);
      },
      [](const workloads::micro::CatalogWorkload& wl, Rng& rng) {
        return wl.batch(24, /*reprices=*/2, rng);
      },
      10, "catalog");
}

INSTANTIATE_TEST_SUITE_P(Workers, PipelineEquivalenceTest,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// --- staged-path misuse guards ----------------------------------------------

TEST(PipelineStagingTest, ExecuteWithoutPrepareThrows) {
  sched::EngineConfig cfg;
  cfg.pipeline_depth = 2;
  db::Database db(cfg);
  workloads::micro::CatalogOptions wopts;
  workloads::micro::CatalogWorkload wl(db, wopts);
  EXPECT_THROW(db.execute_prepared(), InvariantError);
}

TEST(PipelineStagingTest, DoublePrepareThrows) {
  sched::EngineConfig cfg;
  cfg.pipeline_depth = 2;
  db::Database db(cfg);
  workloads::micro::CatalogOptions wopts;
  workloads::micro::CatalogWorkload wl(db, wopts);
  Rng rng(7);
  db.prepare_batch(wl.batch(4, 1, rng));
  EXPECT_THROW(db.prepare_batch(wl.batch(4, 1, rng)), InvariantError);
  // Leave the staged batch clean for teardown.
  (void)db.execute_prepared();
}

// --- durable cluster equivalence ---------------------------------------------

namespace {

workloads::micro::CatalogOptions cluster_wopts() {
  workloads::micro::CatalogOptions wopts;
  wopts.catalog_keys = 100;
  wopts.accounts = 300;
  wopts.reads_per_tx = 4;
  return wopts;
}

struct ClusterRun {
  std::vector<std::uint64_t> hashes;
  std::string counters;
  consensus::RecoveryStats stats;
  std::uint64_t acked = 0;
};

/// Runs a 3-replica durable cluster to quiescence. With `fsync_hiccup`, one
/// non-leader commit queue is paused for two mid-run batches: durable acks
/// still clear (the other two replicas form the fsync quorum — validator
/// rule 7 only demands a majority), and the laggard's deferred fsyncs land
/// AFTER it has already prepared the next batch, which is exactly the
/// prepare(N) ∥ fsync(N-1) overlap the trace witnesses must capture.
/// Without the hiccup, ack-gated submission keeps all three fsyncs ahead of
/// the next prepare and no overlap witness exists (asserted separately).
ClusterRun run_cluster(unsigned pipeline_depth, int rounds,
                       std::uint64_t sync_delay_us,
                       bool fsync_hiccup = false) {
  const auto wopts = cluster_wopts();
  db::Database gen_db{sched::EngineConfig{}};
  workloads::micro::CatalogWorkload gen(gen_db, wopts);

  dur::FaultVfs vfs(99);
  vfs.set_sync_delay(sync_delay_us);
  consensus::RecoveryOptions rec;
  // No checkpoint inside the run: publication flushes the commit queue,
  // which would wait on the paused victim during the hiccup window.
  rec.checkpoint_interval = 100;
  rec.vfs = &vfs;
  rec.dur_dir = "dur";
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.trace_sample_n = 1;
  cfg.pipeline_depth = pipeline_depth;
  consensus::ReplicatedDb rdb(
      3, 777, [wopts](db::Database& d) {
        workloads::micro::CatalogWorkload wl(d, wopts);
      },
      cfg, {}, rec);
  rdb.run_ms(1000);

  int victim = -1;
  Rng rng(31);
  for (int i = 0; i < rounds; ++i) {
    if (fsync_hiccup && i == rounds / 2) {
      const int leader = rdb.raft().leader();
      EXPECT_GE(leader, 0);
      victim = (leader + 1) % 3;
      // Exactly `pipeline_depth` batches fit the paused window before
      // push() would stall the apply thread; the hiccup spans exactly two.
      // The victim must enter the pause fully caught up — any backlog it
      // applies while paused eats into that window.
      for (int d = 0; d < 40 && !rdb.converged(); ++d) rdb.run_ms(50);
      EXPECT_TRUE(rdb.converged());
      if (auto* q = rdb.commit_queue(static_cast<unsigned>(victim))) {
        q->flush();
        q->pause();
      }
    }
    if (victim >= 0 && i == rounds / 2 + 2) {
      if (auto* q = rdb.commit_queue(static_cast<unsigned>(victim))) {
        q->resume();
      }
      victim = -1;
    }
    EXPECT_TRUE(rdb.submit_with_retry(gen.batch(8, 2, rng)));
    rdb.run_ms(50);
  }
  if (victim >= 0) {
    if (auto* q = rdb.commit_queue(static_cast<unsigned>(victim))) {
      q->resume();
    }
  }
  rdb.run_ms(2000);
  EXPECT_TRUE(rdb.converged());

  ClusterRun out;
  out.hashes = rdb.state_hashes();
  out.counters = rdb.deterministic_counter_snapshot(0);
  EXPECT_EQ(out.counters, rdb.deterministic_counter_snapshot(1));
  EXPECT_EQ(out.counters, rdb.deterministic_counter_snapshot(2));
  out.stats = rdb.recovery_stats();
  out.acked = rdb.replica_metrics().submit_acked_durable->value();
  return out;
}

}  // namespace

TEST(PipelineClusterTest, PipelinedClusterMatchesSerialByteForByte) {
  RecorderGuard guard;
  const ClusterRun serial = run_cluster(/*pipeline_depth=*/0, 12,
                                        /*sync_delay_us=*/0);
  FlightRecorder::instance().clear();
  const ClusterRun piped = run_cluster(/*pipeline_depth=*/2, 12,
                                       /*sync_delay_us=*/500,
                                       /*fsync_hiccup=*/true);

  ASSERT_EQ(serial.hashes.size(), piped.hashes.size());
  for (std::size_t i = 0; i < serial.hashes.size(); ++i) {
    EXPECT_EQ(serial.hashes[i], piped.hashes[i]) << "replica " << i;
  }
  // The telemetry witness: deterministic counters byte-identical between
  // the serial ablation and the pipelined run.
  EXPECT_EQ(serial.counters, piped.counters);
  // Acks in durable mode gate on the durable watermark in BOTH modes.
  EXPECT_GE(serial.acked, 12u);
  EXPECT_GE(piped.acked, 12u);

  // The pipelined trace passes every causal check (including fsync <= ack)
  // and carries cross-batch overlap witnesses: prepare(N) stamped before
  // the same replica's fsync(N-1) — the overlap the pipeline exists for.
  const auto events = FlightRecorder::instance().snapshot();
  const auto report = obs::tracing::validate_spans(events);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_GT(report.pipeline_overlaps, 0u);
  bool saw_prepare = false, saw_ack = false;
  for (const SpanEvent& e : events) {
    saw_prepare |= e.kind == SpanKind::kPrepare;
    saw_ack |= e.kind == SpanKind::kAckDurable;
  }
  EXPECT_TRUE(saw_prepare);
  EXPECT_TRUE(saw_ack);
}

TEST(PipelineClusterTest, SerialTraceHasNoOverlapWitnesses) {
  RecorderGuard guard;
  (void)run_cluster(/*pipeline_depth=*/0, 8, /*sync_delay_us=*/0);
  const auto events = FlightRecorder::instance().snapshot();
  const auto report = obs::tracing::validate_spans(events);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_EQ(report.pipeline_overlaps, 0u);
}

// --- ack durability under a crash between agree and fsync --------------------

/// The scenario the durable-watermark ack exists for: a replica agrees on
/// batches but its fsyncs are stuck (paused commit queue); it is then
/// killed and power-failed, losing every record still in the queue. Because
/// acks waited for a QUORUM of durable watermarks (the two healthy
/// replicas), no acked transaction may be lost: the cluster still converges
/// to a state containing every acked batch, and the restarted victim
/// catches back up to it.
TEST(PipelineClusterTest, CrashBetweenAgreeAndFsyncLosesNoAckedTransaction) {
  const auto wopts = cluster_wopts();
  db::Database gen_db{sched::EngineConfig{}};
  workloads::micro::CatalogWorkload gen(gen_db, wopts);

  dur::FaultVfs vfs(7);
  consensus::RecoveryOptions rec;
  rec.checkpoint_interval = 100;  // no checkpoint flush barrier in-window
  rec.vfs = &vfs;
  rec.dur_dir = "dur";
  sched::EngineConfig cfg;
  cfg.workers = 2;
  // Window larger than everything submitted while paused: push() must never
  // block on the victim, or the whole sim thread would stall.
  cfg.pipeline_depth = 64;
  consensus::ReplicatedDb rdb(
      3, 2024, [wopts](db::Database& d) {
        workloads::micro::CatalogWorkload wl(d, wopts);
      },
      cfg, {}, rec);
  rdb.run_ms(1000);
  const int leader = rdb.raft().leader();
  ASSERT_GE(leader, 0);
  const consensus::NodeId victim = leader == 0 ? 1 : 0;

  Rng rng(13);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(gen.batch(6, 2, rng)));
    rdb.run_ms(50);
  }

  // Freeze the victim's durability stage: it keeps agreeing and executing,
  // but nothing it applies from here on reaches its platter.
  ASSERT_NE(rdb.commit_queue(victim), nullptr);
  rdb.commit_queue(victim)->pause();
  const std::uint64_t acked_before =
      rdb.replica_metrics().submit_acked_durable->value();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(gen.batch(6, 2, rng)));
    rdb.run_ms(50);
  }
  // Every one of those submissions was acked by the durable quorum of the
  // two healthy replicas, with the victim's watermark frozen.
  EXPECT_GE(rdb.replica_metrics().submit_acked_durable->value(),
            acked_before + 6);

  // Kill it between agree and fsync: the paused queue's records are exactly
  // the agreed-but-unsynced window, and the power failure burns them.
  rdb.crash_replica(victim);
  vfs.power_fail("dur/r" + std::to_string(victim));
  rdb.run_ms(300);
  rdb.restart_replica(victim);
  for (int d = 0; d < 20 && !rdb.converged(); ++d) rdb.run_ms(2000);

  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
  // The surviving state contains every acked batch: it is exactly the
  // witness replay of the full agreed sequence.
  EXPECT_EQ(hashes[victim], rdb.witness_state_hash());
  EXPECT_EQ(rdb.deterministic_counter_snapshot(victim),
            rdb.deterministic_counter_snapshot(static_cast<unsigned>(leader)));
  EXPECT_EQ(rdb.raft().applied(victim).size(), rdb.batches_submitted());
}

}  // namespace
}  // namespace prog
