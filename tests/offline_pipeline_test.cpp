// End-to-end test of the offline-analysis pipeline: profile once, serialize
// the artifact, ship it to replicas that never ran symbolic execution, and
// verify they execute identically to a locally-analyzed database.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "lang/builder.hpp"
#include "sym/serialize.hpp"
#include "sym/symexec.hpp"

namespace prog {
namespace {

constexpr TableId kT = 1;
constexpr TableId kIdx = 2;
constexpr FieldId kF = 0;

lang::Proc make_indexed_put() {
  // DT: the slot comes from an index row.
  lang::ProcBuilder b("indexed_put");
  auto bucket = b.param("bucket", 0, 9);
  auto v = b.param("v", 0, 1000);
  auto idx = b.get(kIdx, bucket);
  auto slot = b.let("slot", idx.field(kF));
  b.put(kT, bucket * 1000 + slot, {{kF, v}});
  b.put(kIdx, bucket, {{kF, slot + 1}});
  return std::move(b).build();
}

std::vector<sched::TxRequest> workload_batch(Rng& rng, sched::ProcId proc) {
  std::vector<sched::TxRequest> out;
  for (int i = 0; i < 25; ++i) {
    sched::TxRequest r;
    r.proc = proc;
    r.input.add(rng.uniform(0, 9)).add(rng.uniform(0, 1000));
    out.push_back(std::move(r));
  }
  return out;
}

void load(db::Database& db) {
  for (Key b = 0; b < 10; ++b) {
    db.store().put({kIdx, b}, store::Row{{kF, 0}}, 0);
  }
}

TEST(OfflinePipelineTest, ShippedProfileExecutesIdentically) {
  // The "build server": analyze once, serialize.
  auto proc = std::make_shared<const lang::Proc>(make_indexed_put());
  const std::string artifact =
      sym::serialize(*sym::Profiler::profile(*proc));

  // Replica A: local analysis. Replicas B, C: deserialize the artifact.
  sched::EngineConfig cfg;
  cfg.workers = 3;
  cfg.check_containment = true;

  db::Database local(cfg);
  sched::ProcId local_id = local.register_procedure(make_indexed_put());
  load(local);
  local.finalize();

  auto make_shipped = [&] {
    auto d = std::make_unique<db::Database>(cfg);
    std::shared_ptr<const sym::TxProfile> prof =
        sym::deserialize(artifact, *proc);
    d->register_procedure_shared(proc, std::move(prof));
    load(*d);
    d->finalize();
    return d;
  };
  auto b = make_shipped();
  auto c = make_shipped();

  Rng ra(77), rb(77), rc(77);
  for (int batch = 0; batch < 8; ++batch) {
    local.execute(workload_batch(ra, local_id));
    b->execute(workload_batch(rb, 0));
    c->execute(workload_batch(rc, 0));
  }
  EXPECT_EQ(local.state_hash(), b->state_hash());
  EXPECT_EQ(b->state_hash(), c->state_hash());
  // And real work happened: every index advanced.
  std::int64_t total = 0;
  for (Key bucket = 0; bucket < 10; ++bucket) {
    total += b->store().get({kIdx, bucket})->at(kF);
  }
  EXPECT_EQ(total, 8 * 25);
}

TEST(OfflinePipelineTest, ShippedProfileKeepsClassification) {
  auto proc = std::make_shared<const lang::Proc>(make_indexed_put());
  auto original = sym::Profiler::profile(*proc);
  auto restored = sym::deserialize(sym::serialize(*original), *proc);
  EXPECT_EQ(restored->klass(), sym::TxClass::kDependent);
  EXPECT_EQ(restored->pivot_site_count(), original->pivot_site_count());
}

}  // namespace
}  // namespace prog
