// Tests for the txlint static-analysis library (src/analysis/):
//
//  - differential oracle: the dataflow classifier (pass 1) must agree with
//    symbolic execution on class and footprint for every workload procedure
//    (classify_checked throws otherwise);
//  - injected bugs: a falsified summary must trip cross_check — this is the
//    test that the oracle actually has teeth;
//  - conflict matrix (pass 3): pairwise semantics, serialization round-trip,
//    malformed-input rejection;
//  - engine integration: the per-round conflict census changes no results
//    (state hashes / invariants identical with elision on and off) while
//    provably removing lock-table dependency edges from writer-free rounds;
//  - the Relevance Proc-identity guard rejects stale statement addresses.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/conflict_matrix.hpp"
#include "analysis/dataflow.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "db/database.hpp"
#include "lang/relevance.hpp"
#include "sched/trace.hpp"
#include "sym/symexec.hpp"
#include "workloads/microbench.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

namespace prog {
namespace {

namespace micro = workloads::micro;
using analysis::ConflictMatrix;
using analysis::StaticSummary;
using analysis::TableFootprint;
using sym::TxClass;

/// Profiles `proc` and runs the full differential oracle; returns the static
/// summary (throws InvariantError on any static/SE disagreement).
StaticSummary checked(const lang::Proc& proc) {
  const auto profile = sym::Profiler::profile(proc);
  return analysis::classify_checked(proc, *profile);
}

// --- differential oracle -----------------------------------------------------

TEST(DifferentialTest, TpccAgreesWithSymbolicExecution) {
  const auto sc = workloads::tpcc::Scale::tiny(1);
  EXPECT_EQ(checked(workloads::tpcc::build_new_order(sc)).klass,
            TxClass::kDependent);
  EXPECT_EQ(checked(workloads::tpcc::build_payment(sc)).klass,
            TxClass::kIndependent);
  EXPECT_EQ(checked(workloads::tpcc::build_delivery(sc)).klass,
            TxClass::kDependent);
  EXPECT_EQ(checked(workloads::tpcc::build_order_status(sc)).klass,
            TxClass::kReadOnly);
  EXPECT_EQ(checked(workloads::tpcc::build_stock_level(sc)).klass,
            TxClass::kReadOnly);
}

TEST(DifferentialTest, RubisAgreesWithSymbolicExecution) {
  const auto sc = workloads::rubis::Scale::small();
  EXPECT_EQ(checked(workloads::rubis::build_store_bid(sc)).klass,
            TxClass::kDependent);
  EXPECT_EQ(checked(workloads::rubis::build_store_buy_now(sc)).klass,
            TxClass::kDependent);
  EXPECT_EQ(checked(workloads::rubis::build_store_comment(sc)).klass,
            TxClass::kDependent);
  EXPECT_EQ(checked(workloads::rubis::build_register_user(sc)).klass,
            TxClass::kDependent);
  EXPECT_EQ(checked(workloads::rubis::build_register_item(sc)).klass,
            TxClass::kDependent);
}

TEST(DifferentialTest, MicroAgreesWithExactFootprints) {
  const micro::Options mo;
  const micro::CatalogOptions co;

  const StaticSummary rmw = checked(micro::build_rmw(mo));
  EXPECT_EQ(rmw.klass, TxClass::kIndependent);
  EXPECT_EQ(rmw.tables_touched, std::vector<TableId>{micro::kTable});
  EXPECT_EQ(rmw.tables_written, std::vector<TableId>{micro::kTable});
  // The read handle feeds only the written *value*, never a key: no pivots.
  EXPECT_TRUE(rmw.pivot_handles.empty());

  const StaticSummary scan = checked(micro::build_scan(mo));
  EXPECT_EQ(scan.klass, TxClass::kReadOnly);
  EXPECT_EQ(scan.tables_touched, std::vector<TableId>{micro::kTable});
  EXPECT_TRUE(scan.tables_written.empty());

  const StaticSummary order = checked(micro::build_order(co));
  EXPECT_EQ(order.klass, TxClass::kIndependent);
  EXPECT_EQ(order.tables_touched,
            (std::vector<TableId>{micro::kCatalog, micro::kAccount}));
  EXPECT_EQ(order.tables_written, std::vector<TableId>{micro::kAccount});

  const StaticSummary reprice = checked(micro::build_reprice(co));
  EXPECT_EQ(reprice.klass, TxClass::kIndependent);
  EXPECT_EQ(reprice.tables_touched, std::vector<TableId>{micro::kCatalog});
  EXPECT_EQ(reprice.tables_written, std::vector<TableId>{micro::kCatalog});
}

TEST(DifferentialTest, NewOrderHasStaticPivots) {
  // new_order's item-validity branches pivot on stock/item rows: the static
  // classifier must surface at least one pivot handle for a DT.
  const auto sc = workloads::tpcc::Scale::tiny(1);
  const StaticSummary s = checked(workloads::tpcc::build_new_order(sc));
  EXPECT_FALSE(s.pivot_handles.empty());
}

// --- injected bugs must trip the oracle --------------------------------------

TEST(CrossCheckTest, CatchesInjectedClassUnderApproximation) {
  const micro::CatalogOptions co;
  const lang::Proc proc = micro::build_reprice(co);
  const auto profile = sym::Profiler::profile(proc);
  StaticSummary s = analysis::classify(proc);
  ASSERT_NO_THROW(analysis::cross_check(proc, s, *profile));

  // A "buggy classifier" that misses the write and reports ROT.
  StaticSummary bad = s;
  bad.klass = TxClass::kReadOnly;
  EXPECT_THROW(analysis::cross_check(proc, bad, *profile), InvariantError);
}

TEST(CrossCheckTest, CatchesInjectedFootprintLoss) {
  const micro::CatalogOptions co;
  const lang::Proc proc = micro::build_order(co);
  const auto profile = sym::Profiler::profile(proc);
  StaticSummary bad = analysis::classify(proc);
  // Drop the catalog table from the static footprint: SE's tables now
  // escape the "sound over-approximation".
  std::erase(bad.tables_touched, micro::kCatalog);
  EXPECT_THROW(analysis::cross_check(proc, bad, *profile), InvariantError);
}

TEST(CrossCheckTest, CatchesUnexplainedOverApproximation) {
  // reprice is straight-line: SE prunes no paths and merges no subtrees, so
  // even an *over*-approximated class (DT > IT) is flagged as a divergence
  // the precision argument cannot explain.
  const micro::CatalogOptions co;
  const lang::Proc proc = micro::build_reprice(co);
  const auto profile = sym::Profiler::profile(proc);
  ASSERT_EQ(profile->metrics().infeasible_paths, 0u);
  ASSERT_EQ(profile->metrics().merged_branches, 0u);
  StaticSummary bad = analysis::classify(proc);
  bad.klass = TxClass::kDependent;
  EXPECT_THROW(analysis::cross_check(proc, bad, *profile), InvariantError);
}

// --- conflict matrix ---------------------------------------------------------

TEST(ConflictMatrixTest, PairwiseSemantics) {
  const micro::Options mo;
  const micro::CatalogOptions co;
  const lang::Proc rmw = micro::build_rmw(mo);
  const lang::Proc scan = micro::build_scan(mo);
  const lang::Proc order = micro::build_order(co);
  const lang::Proc reprice = micro::build_reprice(co);
  const ConflictMatrix m =
      ConflictMatrix::from_procs({&rmw, &scan, &order, &reprice});
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m.name(0), "micro_rmw");
  EXPECT_EQ(m.name(3), "micro_reprice");

  // Two rmw instances race on the same table; two scans never conflict.
  EXPECT_TRUE(m.may_conflict(0, 0));
  EXPECT_FALSE(m.may_conflict(1, 1));
  // rmw writes the table scan reads.
  EXPECT_TRUE(m.may_conflict(0, 1));
  EXPECT_TRUE(m.may_conflict(1, 0));
  // The YCSB table and the catalog schema are disjoint.
  EXPECT_FALSE(m.may_conflict(0, 2));
  EXPECT_FALSE(m.may_conflict(1, 3));
  // reprice writes the catalog table order reads.
  EXPECT_TRUE(m.may_conflict(2, 3));
  EXPECT_TRUE(m.may_conflict(3, 2));

  EXPECT_TRUE(m.footprint(2).touches(micro::kCatalog));
  EXPECT_FALSE(m.footprint(2).writes(micro::kCatalog));
  EXPECT_TRUE(m.footprint(2).writes(micro::kAccount));
}

TEST(ConflictMatrixTest, SerializeRoundTrips) {
  ConflictMatrix m;
  m.add("alpha", TableFootprint{{3, 1, 1}, {1}});  // unsorted + dup on entry
  m.add("beta", TableFootprint{{2}, {}});
  m.add("gamma", TableFootprint{{1, 2}, {2}});

  const std::string text = m.serialize();
  EXPECT_EQ(text,
            "conflict-matrix 1\n"
            "proc alpha touched 2 1 3 written 1 1\n"
            "proc beta touched 1 2 written 0\n"
            "proc gamma touched 2 1 2 written 1 2\n"
            "end\n");

  const ConflictMatrix r = ConflictMatrix::deserialize(text);
  ASSERT_EQ(r.size(), m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(r.name(i), m.name(i));
    EXPECT_EQ(r.footprint(i).touched, m.footprint(i).touched);
    EXPECT_EQ(r.footprint(i).written, m.footprint(i).written);
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_EQ(r.may_conflict(i, j), m.may_conflict(i, j));
    }
  }
  // alpha writes 1, gamma touches 1; beta (pure reader of 2) conflicts with
  // gamma (writer of 2) but not with alpha.
  EXPECT_TRUE(r.may_conflict(0, 2));
  EXPECT_TRUE(r.may_conflict(1, 2));
  EXPECT_FALSE(r.may_conflict(0, 1));
}

TEST(ConflictMatrixTest, DeserializeRejectsMalformed) {
  EXPECT_THROW(ConflictMatrix::deserialize(""), UsageError);
  EXPECT_THROW(ConflictMatrix::deserialize("bogus\nend\n"), UsageError);
  // Missing trailer.
  EXPECT_THROW(ConflictMatrix::deserialize("conflict-matrix 1\n"), UsageError);
  // Truncated table list.
  EXPECT_THROW(ConflictMatrix::deserialize(
                   "conflict-matrix 1\nproc p touched 2 1 written 0\nend\n"),
               UsageError);
  // written-set not a subset of touched-set violates the add() invariant.
  EXPECT_THROW(ConflictMatrix::deserialize(
                   "conflict-matrix 1\nproc p touched 1 1 written 1 9\nend\n"),
               InvariantError);
}

// --- engine integration: the per-round census --------------------------------

std::uint64_t edge_count(const sched::BatchTrace& trace) {
  std::uint64_t edges = 0;
  for (const auto& a : trace.attempts) edges += a.preds.size();
  return edges;
}

sched::EngineConfig census_cfg(bool elide) {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.static_conflict_elision = elide;
  return cfg;
}

TEST(ConflictElisionTest, CatalogResultsIdenticalOnAndOff) {
  const micro::CatalogOptions opts{/*catalog_keys=*/64, /*accounts=*/256,
                                   /*reads_per_tx=*/4, /*zipf_theta=*/0.9};
  std::uint64_t hash[2] = {0, 0};
  std::int64_t spent[2] = {0, 0};
  for (const bool elide : {false, true}) {
    db::Database db(census_cfg(elide));
    micro::CatalogWorkload wl(db, opts);
    Rng rng(7);
    for (int b = 0; b < 6; ++b) {
      // Every third batch carries repricings; the others are writer-free on
      // the catalog table and exercise the elided path.
      auto res = db.execute(wl.batch(48, b % 3 == 0 ? 2 : 0, rng));
      EXPECT_EQ(res.committed, 48u);
    }
    hash[elide] = db.state_hash();
    spent[elide] = micro::total_spent(db.store(), opts);
  }
  EXPECT_EQ(hash[false], hash[true]);
  EXPECT_EQ(spent[false], spent[true]);
}

TEST(ConflictElisionTest, TpccResultsIdenticalOnAndOff) {
  const auto sc = workloads::tpcc::Scale::tiny(1);
  std::uint64_t hash[2] = {0, 0};
  std::uint64_t committed[2] = {0, 0};
  for (const bool elide : {false, true}) {
    db::Database db(census_cfg(elide));
    workloads::tpcc::Workload wl(db, sc);
    Rng rng(11);
    for (int b = 0; b < 2; ++b) {
      committed[elide] += db.execute(wl.batch(32, rng)).committed;
    }
    hash[elide] = db.state_hash();
  }
  EXPECT_EQ(hash[false], hash[true]);
  EXPECT_EQ(committed[false], committed[true]);
}

TEST(ConflictElisionTest, CensusElidesEdgesInWriterFreeRounds) {
  // Hand-built worst case: every order reads the *same* catalog item (a
  // maximally hot read lock) but writes a distinct account. In a round with
  // no reprice the census proves the catalog is read-only and the account
  // table single-writer-per-key, so the elided run has zero lock-table
  // dependency edges; the baseline serializes all orders behind the hot
  // read entry. A round that does contain a reprice keeps every lock in
  // both configurations — the census may only elide what cannot conflict.
  const micro::CatalogOptions opts{/*catalog_keys=*/64, /*accounts=*/256,
                                   /*reads_per_tx=*/4, /*zipf_theta=*/0.0};
  std::uint64_t free_edges[2] = {0, 0};
  std::uint64_t writer_edges[2] = {0, 0};
  for (const bool elide : {false, true}) {
    db::Database db(census_cfg(elide));
    micro::CatalogWorkload wl(db, opts);
    auto order = [&](Value acct) {
      sched::TxRequest r;
      r.proc = wl.order();
      r.input.add(acct);
      r.input.add_array(std::vector<Value>(4, 0));  // all read item 0
      return r;
    };
    std::vector<sched::TxRequest> writer_free;
    for (Value a = 0; a < 16; ++a) writer_free.push_back(order(a));
    sched::BatchTrace trace;
    db.execute_traced(std::move(writer_free), &trace);
    free_edges[elide] = edge_count(trace);

    std::vector<sched::TxRequest> with_writer;
    for (Value a = 0; a < 15; ++a) with_writer.push_back(order(a));
    sched::TxRequest rep;
    rep.proc = wl.reprice();
    rep.input.add(0);   // reprices the hot item
    rep.input.add(5);
    with_writer.push_back(std::move(rep));
    db.execute_traced(std::move(with_writer), &trace);
    writer_edges[elide] = edge_count(trace);
  }
  EXPECT_GT(free_edges[false], 0u);
  EXPECT_EQ(free_edges[true], 0u);
  EXPECT_GT(writer_edges[true], 0u);
  EXPECT_EQ(writer_edges[false], writer_edges[true]);
}

// --- Relevance Proc-identity guard -------------------------------------------

TEST(RelevanceGuardTest, IsForkingRejectsForeignProcInstance) {
  const micro::CatalogOptions co;
  const lang::Proc proc = micro::build_order(co);
  const lang::Relevance rel = lang::analyze_relevance(proc);
  EXPECT_NO_THROW((void)rel.is_forking(proc, proc.body.front()));
  // A copy has fresh statement addresses: querying it against the original
  // analysis would silently answer "not forking" — the guard must trip.
  const lang::Proc copy = proc;
  EXPECT_THROW((void)rel.is_forking(copy, copy.body.front()), InvariantError);
}

}  // namespace
}  // namespace prog
