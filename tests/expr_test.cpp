// Unit tests for the hash-consed symbolic expression layer.
#include <gtest/gtest.h>

#include <unordered_set>

#include "expr/expr.hpp"

namespace prog::expr {
namespace {

/// Trivial context for evaluation tests.
class Ctx final : public EvalContext {
 public:
  std::vector<Value> inputs;
  std::vector<std::vector<Value>> arrays;
  std::unordered_map<std::uint64_t, Value> pivots;  // (site<<16|field) -> v

  Value input(std::uint32_t slot) const override { return inputs.at(slot); }
  Value input_elem(std::uint32_t slot, Value idx) const override {
    return arrays.at(slot).at(static_cast<std::size_t>(idx));
  }
  Value pivot(std::uint32_t site, FieldId field) const override {
    auto it = pivots.find((std::uint64_t{site} << 16) | field);
    return it == pivots.end() ? 0 : it->second;
  }
};

TEST(ExprPoolTest, HashConsingDeduplicates) {
  ExprPool pool;
  const Expr* a = pool.add(pool.input(0), pool.constant(5));
  const Expr* b = pool.add(pool.input(0), pool.constant(5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.constant(7), pool.constant(7));
  EXPECT_NE(pool.constant(7), pool.constant(8));
}

TEST(ExprPoolTest, CommutativeCanonicalization) {
  ExprPool pool;
  const Expr* x = pool.input(0);
  const Expr* y = pool.input(1);
  EXPECT_EQ(pool.add(x, y), pool.add(y, x));
  EXPECT_EQ(pool.mul(x, y), pool.mul(y, x));
  EXPECT_NE(pool.sub(x, y), pool.sub(y, x));
}

TEST(ExprPoolTest, ConstantFolding) {
  ExprPool pool;
  const Expr* e = pool.add(pool.constant(2), pool.constant(3));
  ASSERT_TRUE(e->is_const());
  EXPECT_EQ(e->cval, 5);
  EXPECT_EQ(pool.mul(pool.constant(4), pool.constant(5))->cval, 20);
  EXPECT_EQ(pool.div(pool.constant(7), pool.constant(0))->cval, 0);  // total
  EXPECT_EQ(pool.mod(pool.constant(7), pool.constant(0))->cval, 0);
}

TEST(ExprPoolTest, AlgebraicIdentities) {
  ExprPool pool;
  const Expr* x = pool.input(0);
  EXPECT_EQ(pool.add(x, pool.constant(0)), x);
  EXPECT_EQ(pool.mul(x, pool.constant(1)), x);
  EXPECT_EQ(pool.mul(x, pool.constant(0))->cval, 0);
  EXPECT_EQ(pool.sub(x, x)->cval, 0);
  EXPECT_EQ(pool.cmp(Op::kLe, x, x)->cval, 1);
  EXPECT_EQ(pool.cmp(Op::kLt, x, x)->cval, 0);
}

TEST(ExprPoolTest, BooleanSimplification) {
  ExprPool pool;
  const Expr* x = pool.input(0);
  const Expr* t = pool.constant(1);
  const Expr* f = pool.constant(0);
  const Expr* c = pool.cmp(Op::kGt, x, pool.constant(10));
  EXPECT_EQ(pool.logical_and(c, t), c);
  EXPECT_EQ(pool.logical_and(c, f)->cval, 0);
  EXPECT_EQ(pool.logical_or(c, t)->cval, 1);
  EXPECT_EQ(pool.logical_or(c, f), c);
}

TEST(ExprPoolTest, NotOfComparisonInverts) {
  ExprPool pool;
  const Expr* x = pool.input(0);
  const Expr* lt = pool.cmp(Op::kLt, x, pool.constant(3));
  const Expr* ge = pool.cmp(Op::kGe, x, pool.constant(3));
  EXPECT_EQ(pool.logical_not(lt), ge);
  EXPECT_EQ(pool.logical_not(pool.logical_not(lt)), lt);
}

TEST(ExprPoolTest, LinearFoldCollapsesSharedTerms) {
  ExprPool pool;
  const Expr* next = pool.pivot_field(3, 1);
  // (next - 20 + 5) < next  ==>  -15 < 0  ==>  true
  const Expr* lhs = pool.add(pool.sub(next, pool.constant(20)), pool.constant(5));
  const Expr* e = pool.cmp(Op::kLt, lhs, next);
  ASSERT_TRUE(e->is_const());
  EXPECT_EQ(e->cval, 1);
  // (x + 1) > (x + 1) stays false; (x+2) >= (x+1) is true.
  const Expr* x = pool.input(0);
  EXPECT_EQ(pool.cmp(Op::kGe, pool.add(x, pool.constant(2)),
                     pool.add(x, pool.constant(1)))
                ->cval,
            1);
}

TEST(ExprPoolTest, LinearFoldKeepsGenuineComparisons) {
  ExprPool pool;
  const Expr* x = pool.input(0);
  const Expr* y = pool.input(1);
  const Expr* e = pool.cmp(Op::kLt, x, y);
  EXPECT_FALSE(e->is_const());
}

TEST(ExprEvalTest, Arithmetic) {
  ExprPool pool;
  Ctx ctx;
  ctx.inputs = {7, 3};
  const Expr* x = pool.input(0);
  const Expr* y = pool.input(1);
  EXPECT_EQ(eval(pool.add(x, y), ctx), 10);
  EXPECT_EQ(eval(pool.sub(x, y), ctx), 4);
  EXPECT_EQ(eval(pool.mul(x, y), ctx), 21);
  EXPECT_EQ(eval(pool.div(x, y), ctx), 2);
  EXPECT_EQ(eval(pool.mod(x, y), ctx), 1);
  EXPECT_EQ(eval(pool.min(x, y), ctx), 3);
  EXPECT_EQ(eval(pool.max(x, y), ctx), 7);
  EXPECT_EQ(eval(pool.neg(x), ctx), -7);
}

TEST(ExprEvalTest, ComparisonsAndBooleans) {
  ExprPool pool;
  Ctx ctx;
  ctx.inputs = {7, 3};
  const Expr* x = pool.input(0);
  const Expr* y = pool.input(1);
  EXPECT_EQ(eval(pool.cmp(Op::kGt, x, y), ctx), 1);
  EXPECT_EQ(eval(pool.cmp(Op::kLe, x, y), ctx), 0);
  EXPECT_EQ(eval(pool.logical_and(pool.cmp(Op::kGt, x, y),
                                  pool.cmp(Op::kNe, x, y)),
                 ctx),
            1);
  EXPECT_EQ(eval(pool.logical_not(pool.cmp(Op::kGt, x, y)), ctx), 0);
}

TEST(ExprEvalTest, ArrayAndPivotLeaves) {
  ExprPool pool;
  Ctx ctx;
  ctx.inputs = {2};
  ctx.arrays = {{}, {10, 20, 30}};
  ctx.pivots[(std::uint64_t{5} << 16) | 3] = 99;
  const Expr* elem = pool.input_elem(1, pool.input(0));
  EXPECT_EQ(eval(elem, ctx), 30);
  EXPECT_EQ(eval(pool.pivot_field(5, 3), ctx), 99);
}

TEST(ExprEvalTest, DivisionByZeroIsTotal) {
  ExprPool pool;
  Ctx ctx;
  ctx.inputs = {5, 0};
  EXPECT_EQ(eval(pool.div(pool.input(0), pool.input(1)), ctx), 0);
  EXPECT_EQ(eval(pool.mod(pool.input(0), pool.input(1)), ctx), 0);
}

TEST(ExprTest, DirectFlagPropagation) {
  ExprPool pool;
  const Expr* direct = pool.add(pool.input(0), pool.constant(1));
  EXPECT_TRUE(direct->direct);
  const Expr* pivot = pool.pivot_field(0, 1);
  EXPECT_FALSE(pivot->direct);
  EXPECT_FALSE(pool.add(direct, pivot)->direct);
}

TEST(ExprTest, CollectPivotSites) {
  ExprPool pool;
  std::unordered_set<std::uint32_t> sites;
  const Expr* e = pool.add(pool.pivot_field(2, 0),
                           pool.mul(pool.pivot_field(7, 1), pool.input(0)));
  collect_pivot_sites(e, sites);
  EXPECT_EQ(sites, (std::unordered_set<std::uint32_t>{2, 7}));
}

TEST(ExprTest, ToStringRendering) {
  ExprPool pool;
  const Expr* x = pool.input(0);  // created first -> lower canonical id
  const Expr* five = pool.constant(5);
  EXPECT_EQ(to_string(pool.add(x, five)), "(in0 + 5)");
  EXPECT_EQ(to_string(pool.pivot_field(3, 2)), "pivot3.f2");
}

TEST(ExprTest, WrapOnOverflowDoesNotTrap) {
  ExprPool pool;
  Ctx ctx;
  ctx.inputs = {INT64_MAX, 1};
  // Wrapping semantics, same as the interpreter.
  EXPECT_EQ(eval(pool.add(pool.input(0), pool.input(1)), ctx), INT64_MIN);
}

TEST(ExprPoolTest, MemoryAccountingGrows) {
  ExprPool pool;
  const std::size_t before = pool.memory_bytes();
  for (int i = 0; i < 100; ++i) pool.add(pool.input(0), pool.constant(i));
  EXPECT_GT(pool.memory_bytes(), before);
}

}  // namespace
}  // namespace prog::expr
