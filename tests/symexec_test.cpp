// Tests for the symbolic executor and transaction profiles — the paper's
// core machinery. The last suite is the profile-soundness property sweep:
// for random inputs, the keys a transaction actually touches at runtime must
// be covered by the keys its profile predicted.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "lang/builder.hpp"
#include "lang/interp.hpp"
#include "sym/symexec.hpp"

namespace prog::sym {
namespace {

using lang::Proc;
using lang::ProcBuilder;
using lang::TxInput;
using lang::Val;

constexpr TableId kA = 1;
constexpr TableId kB = 2;
constexpr TableId kC = 3;
constexpr FieldId kF = 0;
constexpr FieldId kG = 1;
constexpr FieldId kPtrField = 2;

Proc make_transfer() {
  ProcBuilder b("transfer");
  auto from = b.param("from", 0, 99);
  auto to = b.param("to", 0, 99);
  auto amount = b.param("amount", 1, 50);
  auto src = b.get(kA, from);
  auto dst = b.get(kA, to);
  b.put(kA, from, {{kF, src.field(kF) - amount}});
  b.put(kA, to, {{kF, dst.field(kF) + amount}});
  return std::move(b).build();
}

TEST(ProfilerTest, IndependentTransactionClassification) {
  const Proc p = make_transfer();
  auto prof = Profiler::profile(p);
  EXPECT_EQ(prof->klass(), TxClass::kIndependent);
  EXPECT_TRUE(prof->complete());
  EXPECT_EQ(prof->pivot_site_count(), 0u);
  EXPECT_TRUE(prof->root().is_leaf());
  EXPECT_EQ(prof->metrics().unique_key_sets, 1u);
  EXPECT_EQ(prof->tables_touched(), std::vector<TableId>{kA});
}

TEST(ProfilerTest, TransferPredictionIsExactKeys) {
  const Proc p = make_transfer();
  auto prof = Profiler::profile(p);
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(3).add(7).add(10);
  const Prediction pred = prof->predict(in, view);
  EXPECT_EQ(pred.keys, (std::vector<TKey>{{kA, 3}, {kA, 7}}));
  EXPECT_EQ(pred.write_keys, (std::vector<TKey>{{kA, 3}, {kA, 7}}));
  EXPECT_TRUE(pred.pivots.empty());
}

TEST(ProfilerTest, ReadOnlyClassification) {
  ProcBuilder b("reader");
  auto k = b.param("k", 0, 10);
  auto h = b.get(kA, k);
  b.emit(h.field(kF));
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_EQ(prof->klass(), TxClass::kReadOnly);
}

TEST(ProfilerTest, ValueBranchCollapsesToOnePath) {
  // The Algorithm-2 situation: the branch changes only the written value.
  ProcBuilder b("neworder_if");
  auto k = b.param("k", 0, 10);
  auto q = b.param("q", 0, 100);
  auto h = b.get(kA, k);
  auto v = b.let("v", b.lit(0));
  b.if_(
      h.field(kF) <= q, [&](ProcBuilder& t) { t.assign(v, q + 0); },
      [&](ProcBuilder& e) { e.assign(v, q + 91); });
  b.put(kA, k, {{kF, v}});
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_TRUE(prof->root().is_leaf());
  EXPECT_EQ(prof->metrics().concolic_skips, 1u);
  EXPECT_EQ(prof->metrics().unique_key_sets, 1u);
  EXPECT_EQ(prof->metrics().depth, 0u);
  EXPECT_EQ(prof->metrics().depth_max, 1u);
  // The pivot h is only used for the written value -> still independent.
  EXPECT_EQ(prof->klass(), TxClass::kIndependent);
}

TEST(ProfilerTest, WithoutRelevanceTheSameProcForks) {
  ProcBuilder b("neworder_if");
  auto k = b.param("k", 0, 10);
  auto q = b.param("q", 0, 100);
  auto h = b.get(kA, k);
  auto v = b.let("v", b.lit(0));
  b.if_(
      h.field(kF) <= q, [&](ProcBuilder& t) { t.assign(v, q + 0); },
      [&](ProcBuilder& e) { e.assign(v, q + 91); });
  b.put(kA, k, {{kF, v}});
  const Proc p = std::move(b).build();
  Profiler::Options opts;
  opts.use_relevance = false;
  auto prof = Profiler::profile(p, opts);
  // Both sides explored, but subtree merging collapses them again.
  EXPECT_GE(prof->metrics().states_explored, 3u);
  EXPECT_EQ(prof->metrics().merged_branches, 1u);
  EXPECT_TRUE(prof->root().is_leaf());
  EXPECT_EQ(prof->metrics().unique_key_sets, 1u);
}

TEST(ProfilerTest, KeyBranchProducesTwoPathSets) {
  ProcBuilder b("keybranch");
  auto x = b.param("x", 0, 100);
  b.if_(
      x > 50, [&](ProcBuilder& t) { t.put(kA, t.lit(1), {{kF, x}}); },
      [&](ProcBuilder& e) { e.put(kA, e.lit(2), {{kF, x}}); });
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_FALSE(prof->root().is_leaf());
  EXPECT_EQ(prof->metrics().unique_key_sets, 2u);
  EXPECT_EQ(prof->klass(), TxClass::kIndependent);

  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput big;
  big.add(80);
  TxInput small;
  small.add(20);
  EXPECT_EQ(prof->predict(big, view).keys, (std::vector<TKey>{{kA, 1}}));
  EXPECT_EQ(prof->predict(small, view).keys, (std::vector<TKey>{{kA, 2}}));
}

TEST(ProfilerTest, InfeasiblePathsArePruned) {
  ProcBuilder b("contradiction");
  auto x = b.param("x", 0, 100);
  auto k = b.let("k", b.lit(0));
  b.if_(x > 50, [&](ProcBuilder& t) {
    // x < 30 is impossible under x > 50: the inner fork must fold away.
    t.if_(
        x < 30, [&](ProcBuilder& tt) { tt.assign(k, tt.lit(1)); },
        [&](ProcBuilder& ee) { ee.assign(k, ee.lit(2)); });
  });
  b.get(kA, k);
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_GE(prof->metrics().infeasible_paths, 1u);
  // Outer branch forks (k is relevant), inner folds: exactly 2 path sets.
  EXPECT_EQ(prof->metrics().unique_key_sets, 2u);
}

TEST(ProfilerTest, EqualSubtreesMerge) {
  ProcBuilder b("mergeme");
  auto x = b.param("x", 0, 100);
  // Forking branch (contains accesses) whose both sides access the same key.
  b.if_(
      x > 50, [&](ProcBuilder& t) { t.put(kA, t.lit(7), {{kF, x}}); },
      [&](ProcBuilder& e) { e.put(kA, e.lit(7), {{kF, x + 1}}); });
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_EQ(prof->metrics().merged_branches, 1u);
  EXPECT_TRUE(prof->root().is_leaf());
  EXPECT_EQ(prof->metrics().unique_key_sets, 1u);
}

TEST(ProfilerTest, PivotMakesDependentTransaction) {
  // GET(A,x) then GET(B, value-read): the classic indirect access.
  ProcBuilder b("dependent");
  auto x = b.param("x", 0, 10);
  auto h = b.get(kA, x);
  auto h2 = b.get(kB, h.field(kPtrField));
  b.put(kC, h2.field(kF) + 100, {{kF, x}});
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_EQ(prof->klass(), TxClass::kDependent);
  EXPECT_EQ(prof->pivot_site_count(), 2u);  // both gets feed later keys
  EXPECT_EQ(prof->tables_touched(), (std::vector<TableId>{kA, kB, kC}));
}

TEST(ProfilerTest, PivotPredictionResolvesThroughStore) {
  ProcBuilder b("chase");
  auto x = b.param("x", 0, 10);
  auto h = b.get(kA, x);
  b.put(kB, h.field(kF), {{kG, b.lit(1)}});
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  ASSERT_EQ(prof->klass(), TxClass::kDependent);

  store::VersionedStore s;
  s.put({kA, 4}, store::Row{{kF, 77}}, 0);
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(4);
  const Prediction pred = prof->predict(in, view);
  EXPECT_EQ(pred.keys, (std::vector<TKey>{{kA, 4}, {kB, 77}}));
  EXPECT_EQ(pred.write_keys, (std::vector<TKey>{{kB, 77}}));
  ASSERT_EQ(pred.pivots.size(), 1u);
  EXPECT_EQ(pred.pivots[0].key, (TKey{kA, 4}));
}

TEST(ProfilerTest, PivotValidationDetectsChange) {
  ProcBuilder b("chase");
  auto x = b.param("x", 0, 10);
  auto h = b.get(kA, x);
  b.put(kB, h.field(kF), {{kG, b.lit(1)}});
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);

  store::VersionedStore s;
  s.put({kA, 4}, store::Row{{kF, 77}}, 0);
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(4);
  const Prediction pred = prof->predict(in, view);
  EXPECT_TRUE(TxProfile::validate_pivots(pred, s));

  s.put({kA, 5}, store::Row{{kF, 1}}, 1);  // unrelated key: still valid
  EXPECT_TRUE(TxProfile::validate_pivots(pred, s));

  s.put({kA, 4}, store::Row{{kF, 78}}, 2);  // pivot changed: invalid
  EXPECT_FALSE(TxProfile::validate_pivots(pred, s));
}

TEST(ProfilerTest, PivotValidationDetectsAppearance) {
  ProcBuilder b("probe");
  auto x = b.param("x", 0, 10);
  auto h = b.get(kA, x);
  b.if_(h.exists(), [&](ProcBuilder& t) {
    t.put(kB, t.lit(1), {{kF, t.lit(1)}});
  });
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(4);
  const Prediction pred = prof->predict(in, view);  // row absent
  EXPECT_TRUE(TxProfile::validate_pivots(pred, s));
  s.put({kA, 4}, store::Row{{kF, 1}}, 1);  // row appears
  EXPECT_FALSE(TxProfile::validate_pivots(pred, s));
}

TEST(ProfilerTest, SymbolicTripCountEnumeratesKeySets) {
  ProcBuilder b("bounded_loop");
  auto n = b.param("n", 1, 3);
  auto ids = b.param_array("ids", 3, 0, 100);
  b.for_(b.lit(0), n, 3, [&](ProcBuilder& body, Val i) {
    body.put(kA, ids[i], {{kF, body.lit(1)}});
  });
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_EQ(prof->klass(), TxClass::kIndependent);
  EXPECT_EQ(prof->metrics().unique_key_sets, 3u);  // n = 1, 2, 3
  EXPECT_EQ(prof->metrics().depth, 2u);  // guard forks at n=1 and n=2

  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(2).add_array({10, 20, 30});
  EXPECT_EQ(prof->predict(in, view).keys,
            (std::vector<TKey>{{kA, 10}, {kA, 20}}));
}

TEST(ProfilerTest, DeliveryPatternYieldsTwoToTheN) {
  // N districts; for each, conditionally process the oldest pending order.
  constexpr int kDistricts = 6;
  ProcBuilder b("mini_delivery");
  auto w = b.param("w", 0, 3);
  b.for_(b.lit(0), b.lit(kDistricts), kDistricts,
         [&](ProcBuilder& body, Val d) {
           auto idx = body.get(kA, w * 10 + d);  // per-district queue head
           body.if_(idx.exists(), [&](ProcBuilder& t) {
             t.put(kB, idx.field(kF), {{kG, t.lit(1)}});
             t.del(kA, w * 10 + d);
           });
         });
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_EQ(prof->klass(), TxClass::kDependent);
  EXPECT_EQ(prof->metrics().unique_key_sets, 1u << kDistricts);
  EXPECT_EQ(prof->pivot_site_count(), kDistricts);
}

TEST(ProfilerTest, StateCapMarksIncompleteAsDependent) {
  ProcBuilder b("explosive");
  auto x = b.param("x", 0, 1);
  auto k = b.let("k", b.lit(0));
  for (int i = 0; i < 10; ++i) {
    auto h = b.get(kA, k + i);
    b.if_(h.field(kF) > 0, [&](ProcBuilder& t) { t.assign(k, k + 1); });
  }
  b.put(kB, k, {{kF, x}});
  const Proc p = std::move(b).build();
  Profiler::Options opts;
  opts.max_states = 8;
  auto prof = Profiler::profile(p, opts);
  EXPECT_FALSE(prof->complete());
  EXPECT_EQ(prof->klass(), TxClass::kDependent);
}

TEST(ProfilerTest, ReadOwnWriteDoesNotCreatePivot) {
  ProcBuilder b("row");
  auto k = b.param("k", 0, 10);
  b.put(kA, k, {{kF, b.lit(5)}});
  auto h = b.get(kA, k);  // sees the buffered write
  b.put(kB, h.field(kF), {{kG, b.lit(1)}});
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  // h.field(kF) is the literal 5 — no pivot, still independent.
  EXPECT_EQ(prof->klass(), TxClass::kIndependent);
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(2);
  const Prediction pred = prof->predict(in, view);
  EXPECT_EQ(pred.keys, (std::vector<TKey>{{kA, 2}, {kB, 5}}));
}

TEST(ProfilerTest, ReadOwnWriteFallsThroughForUnwrittenFields) {
  ProcBuilder b("row2");
  auto k = b.param("k", 0, 10);
  b.put(kA, k, {{kF, b.lit(5)}});
  auto h = b.get(kA, k);
  b.put(kB, h.field(kG), {{kF, b.lit(1)}});  // kG was NOT written
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_EQ(prof->klass(), TxClass::kDependent);  // falls through to store
  store::VersionedStore s;
  s.put({kA, 2}, store::Row{{kG, 33}}, 0);
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(2);
  EXPECT_EQ(prof->predict(in, view).keys,
            (std::vector<TKey>{{kA, 2}, {kB, 33}}));
}

TEST(ProfilerTest, EstimateExceedsExploredWithConcolicSkips) {
  ProcBuilder b("many_value_branches");
  auto k = b.param("k", 0, 10);
  auto x = b.param("x", 0, 100);
  auto v = b.let("v", b.lit(0));
  for (int i = 0; i < 8; ++i) {
    b.if_(x > i * 10, [&](ProcBuilder& t) { t.assign(v, v + 1); });
  }
  b.put(kA, k, {{kF, v}});
  const Proc p = std::move(b).build();
  auto prof = Profiler::profile(p);
  EXPECT_EQ(prof->metrics().concolic_skips, 8u);
  EXPECT_EQ(prof->metrics().states_total_est, 1u << 8);
  EXPECT_EQ(prof->metrics().states_explored, 1u);
}

TEST(ProfilerTest, DumpMentionsStructure) {
  const Proc p = make_transfer();
  auto prof = Profiler::profile(p);
  const std::string d = prof->dump();
  EXPECT_NE(d.find("transfer"), std::string::npos);
  EXPECT_NE(d.find("GET"), std::string::npos);
  EXPECT_NE(d.find("PUT"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profile soundness property: actual runtime accesses ⊆ predicted key-set.
// ---------------------------------------------------------------------------

template <typename Keys>
bool subset(const std::vector<TKey>& a, const Keys& sorted_b) {
  return std::all_of(a.begin(), a.end(), [&](TKey k) {
    return std::binary_search(sorted_b.begin(), sorted_b.end(), k);
  });
}

class SoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SoundnessTest, PredictionCoversActualExecution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);

  // A store with pointer-shaped data for the dependent procs.
  store::VersionedStore s;
  for (Value i = 0; i <= 10; ++i) {
    if (rng.percent(70)) {
      s.put({kA, static_cast<Key>(i)},
            store::Row{{kF, rng.uniform(0, 10)},
                       {kG, rng.uniform(0, 10)},
                       {kPtrField, rng.uniform(0, 10)}},
            0);
    }
    s.put({kB, static_cast<Key>(i)}, store::Row{{kF, rng.uniform(0, 10)}}, 0);
  }

  std::vector<Proc> procs;
  procs.push_back(make_transfer());
  {
    ProcBuilder b("chase");
    auto x = b.param("x", 0, 10);
    auto h = b.get(kA, x);
    b.put(kB, h.field(kF), {{kG, b.lit(1)}});
    procs.push_back(std::move(b).build());
  }
  {
    ProcBuilder b("cond_chase");
    auto x = b.param("x", 0, 10);
    auto h = b.get(kA, x);
    b.if_(
        h.exists(), [&](ProcBuilder& t) { t.put(kB, h.field(kG), {{kF, x}}); },
        [&](ProcBuilder& e) { e.put(kC, x, {{kF, e.lit(0)}}); });
    procs.push_back(std::move(b).build());
  }
  {
    ProcBuilder b("loopy");
    auto n = b.param("n", 1, 5);
    auto ids = b.param_array("ids", 5, 0, 10);
    b.for_(b.lit(0), n, 5, [&](ProcBuilder& body, Val i) {
      auto h = body.get(kB, ids[i]);
      body.put(kB, ids[i], {{kF, h.field(kF) + 1}});
    });
    procs.push_back(std::move(b).build());
  }

  lang::Interp interp;
  store::SnapshotView view(s, 0);
  for (const Proc& p : procs) {
    auto prof = Profiler::profile(p);
    ASSERT_TRUE(prof->complete()) << p.name;
    for (int iter = 0; iter < 50; ++iter) {
      TxInput in;
      for (const lang::Param& prm : p.params) {
        if (prm.is_array) {
          std::vector<Value> vals;
          for (std::uint32_t j = 0; j < prm.max_len; ++j) {
            vals.push_back(rng.uniform(prm.lo, prm.hi));
          }
          in.add_array(std::move(vals));
        } else {
          in.add(rng.uniform(prm.lo, prm.hi));
        }
      }
      const Prediction pred = prof->predict(in, view);
      const lang::ExecResult actual = interp.run(p, in, view);
      EXPECT_TRUE(subset(actual.reads, pred.keys)) << p.name;
      EXPECT_TRUE(subset(actual.writes, pred.keys)) << p.name;
      EXPECT_TRUE(subset(actual.writes, pred.write_keys)) << p.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace prog::sym
