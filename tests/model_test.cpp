// Unit tests for the benchutil scheduling model.
#include <gtest/gtest.h>

#include "benchutil/model.hpp"

namespace prog::benchutil {
namespace {

using sched::BatchTrace;
using sched::TraceAttempt;

TraceAttempt upd(sched::TxIdx tx, std::int64_t service,
                 std::vector<sched::TxIdx> preds = {},
                 std::uint16_t round = 0) {
  return {tx, round, false, false, service, std::move(preds)};
}

TraceAttempt rot(sched::TxIdx tx, std::int64_t service) {
  return {tx, 0, true, false, service, {}};
}

TEST(ModelTest, EmptyTraceIsZero) {
  BatchTrace t;
  EXPECT_EQ(modeled_makespan_us(t, {8, true, true}), 0);
}

TEST(ModelTest, IndependentTasksScaleWithWorkers) {
  BatchTrace t;
  for (sched::TxIdx i = 0; i < 40; ++i) t.attempts.push_back(upd(i, 100));
  const auto w1 = modeled_makespan_us(t, {1, true, true});
  const auto w4 = modeled_makespan_us(t, {4, true, true});
  const auto w40 = modeled_makespan_us(t, {40, true, true});
  EXPECT_EQ(w1, 4000);
  EXPECT_EQ(w4, 1000);
  EXPECT_EQ(w40, 100);
}

TEST(ModelTest, ChainsBoundTheMakespan) {
  BatchTrace t;
  // A chain of 5 tasks of 100us each: no worker count can beat 500us.
  for (sched::TxIdx i = 0; i < 5; ++i) {
    t.attempts.push_back(
        upd(i, 100, i == 0 ? std::vector<sched::TxIdx>{}
                           : std::vector<sched::TxIdx>{i - 1}));
  }
  EXPECT_EQ(modeled_makespan_us(t, {16, true, true}), 500);
  EXPECT_EQ(modeled_makespan_us(t, {1, true, true}), 500);
}

TEST(ModelTest, DiamondDependency) {
  BatchTrace t;
  t.attempts.push_back(upd(0, 100));
  t.attempts.push_back(upd(1, 50, {0}));
  t.attempts.push_back(upd(2, 70, {0}));
  t.attempts.push_back(upd(3, 10, {1, 2}));
  // Critical path: 0 -> 2 -> 3 = 180 with >= 2 workers.
  EXPECT_EQ(modeled_makespan_us(t, {2, true, true}), 180);
  // One worker: everything serial = 230.
  EXPECT_EQ(modeled_makespan_us(t, {1, true, true}), 230);
}

TEST(ModelTest, RoundsAreBarriers) {
  BatchTrace t;
  t.rounds = 1;
  t.attempts.push_back(upd(0, 100, {}, 0));
  t.attempts.push_back(upd(1, 100, {}, 0));
  t.attempts.push_back(upd(0, 50, {}, 1));  // retry in round 1
  // Two workers: round 0 = 100 (parallel), round 1 = 50.
  EXPECT_EQ(modeled_makespan_us(t, {2, true, true}), 150);
}

TEST(ModelTest, FailedAttemptsStillOccupyTheirRound) {
  BatchTrace t;
  t.rounds = 1;
  TraceAttempt fail = upd(1, 30, {0}, 0);
  fail.failed = true;
  t.attempts.push_back(upd(0, 100, {}, 0));
  t.attempts.push_back(fail);
  t.attempts.push_back(upd(1, 90, {}, 1));
  // Round 0 critical path 0 -> failed(30) = 130; round 1 = 90.
  EXPECT_EQ(modeled_makespan_us(t, {4, true, true}), 220);
}

TEST(ModelTest, RotAndPrepareShareThePoolUnderMq) {
  BatchTrace t;
  for (sched::TxIdx i = 0; i < 10; ++i) t.attempts.push_back(rot(i, 100));
  t.prepare_total_us = 1000;
  // MQ with 9 workers + queuer: pool = 2000 / 10 = 200.
  EXPECT_EQ(modeled_makespan_us(t, {9, true, true}), 200);
  // 1Q: queuer prepares alone (1000) while workers run ROTs (1000/9+).
  const auto q1 = modeled_makespan_us(t, {9, false, true});
  EXPECT_EQ(q1, 1000);
}

TEST(ModelTest, SingleHugeRotIsALowerBound) {
  BatchTrace t;
  t.attempts.push_back(rot(0, 5000));
  t.prepare_total_us = 100;
  EXPECT_GE(modeled_makespan_us(t, {32, true, true}), 5000);
}

TEST(ModelTest, CalvinExcludesPreparation) {
  BatchTrace t;
  t.attempts.push_back(upd(0, 100));
  t.prepare_total_us = 100000;
  const auto with = modeled_makespan_us(t, {4, true, true});
  const auto without = modeled_makespan_us(t, {4, true, false});
  EXPECT_GT(with, without);
  EXPECT_EQ(without, 100);
}

TEST(ModelTest, EnqueueAndSfAreSerial) {
  BatchTrace t;
  t.attempts.push_back(upd(0, 100));
  t.enqueue_us = 40;
  t.sf_serial_us = 60;
  EXPECT_EQ(modeled_makespan_us(t, {64, true, true}), 200);
}

TEST(ModelTest, BreakdownSumsToTotal) {
  BatchTrace t;
  t.rounds = 1;
  t.attempts.push_back(rot(0, 50));
  t.attempts.push_back(upd(1, 100, {}, 0));
  t.attempts.push_back(upd(1, 80, {}, 1));
  t.prepare_total_us = 30;
  t.enqueue_us = 20;
  t.sf_serial_us = 10;
  ModelBreakdown bd;
  const auto total = modeled_makespan_us(t, {4, true, true}, &bd);
  EXPECT_EQ(total, bd.phase1_us + bd.enqueue_us + bd.rounds_us + bd.sf_us);
  EXPECT_EQ(bd.enqueue_us, 20);
  EXPECT_EQ(bd.sf_us, 10);
  EXPECT_EQ(bd.rounds_us, 180);
}

TEST(ModelTest, UnknownPredecessorsAreIgnored) {
  BatchTrace t;
  // Predecessor 99 is not in this round (e.g. it was a previous-round tx).
  t.attempts.push_back(upd(0, 100, {99}));
  EXPECT_EQ(modeled_makespan_us(t, {2, true, true}), 100);
}

TEST(ModelTest, ZeroWorkersClampedToOne) {
  BatchTrace t;
  t.attempts.push_back(upd(0, 100));
  t.attempts.push_back(upd(1, 100));
  EXPECT_EQ(modeled_makespan_us(t, {0, true, true}), 200);
}

}  // namespace
}  // namespace prog::benchutil
